"""Tests for the vanilla binomial sweep against financial-theory oracles."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given

from repro.core.boundary import check_tree_boundary_invariants, is_prefix_mask
from repro.lattice.binomial import price_binomial
from repro.options.analytic import european_price, intrinsic_bounds
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.util.validation import ValidationError
from tests.conftest import call_specs


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.05, volatility=0.2, dividend_yield=0.03
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestEuropeanConvergence:
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    def test_converges_to_black_scholes(self, right):
        s = make(right=right, style=Style.EUROPEAN)
        exact = european_price(s)
        err_256 = abs(price_binomial(s, 256).price - exact)
        err_2048 = abs(price_binomial(s, 2048).price - exact)
        assert err_2048 < 0.01
        assert err_2048 < err_256 + 1e-6  # refinement helps (CRR oscillates)

    def test_t1_matches_hand_computation(self):
        s = make(style=Style.EUROPEAN, dividend_yield=0.0)
        from repro.options.params import BinomialParams

        p = BinomialParams.from_spec(s, 1)
        up_payoff = max(s.spot * p.up - s.strike, 0.0)
        dn_payoff = max(s.spot * p.down - s.strike, 0.0)
        expected = p.s1 * up_payoff + p.s0 * dn_payoff
        assert price_binomial(s, 1).price == pytest.approx(expected, rel=1e-14)


class TestAmericanProperties:
    def test_american_geq_european(self):
        am = price_binomial(make(right=Right.PUT), 300).price
        eu = price_binomial(make(right=Right.PUT, style=Style.EUROPEAN), 300).price
        assert am >= eu - 1e-12

    def test_zero_dividend_call_equals_european(self):
        """Merton: never exercise an American call on a non-dividend stock."""
        s = make(dividend_yield=0.0)
        am = price_binomial(s, 500).price
        eu = price_binomial(s.with_style(Style.EUROPEAN), 500).price
        assert am == pytest.approx(eu, abs=1e-10)

    def test_dominates_intrinsic(self):
        for spot in (70.0, 100.0, 140.0):
            s = make(spot=spot, right=Right.PUT)
            assert price_binomial(s, 200).price >= s.intrinsic() - 1e-10

    def test_respects_no_arbitrage_bounds(self):
        for right in (Right.CALL, Right.PUT):
            s = make(right=right)
            lo, hi = intrinsic_bounds(s)
            v = price_binomial(s, 200).price
            assert lo - 1e-9 <= v <= hi + 1e-9

    def test_monotone_in_spot_call(self):
        prices = [price_binomial(make(spot=s0), 128).price for s0 in (80, 100, 120)]
        assert prices[0] < prices[1] < prices[2]

    def test_monotone_in_strike_put(self):
        prices = [
            price_binomial(make(right=Right.PUT, strike=k), 128).price
            for k in (90, 100, 110)
        ]
        assert prices[0] < prices[1] < prices[2]

    def test_monotone_in_volatility(self):
        prices = [
            price_binomial(make(volatility=v), 128).price for v in (0.1, 0.2, 0.4)
        ]
        assert prices[0] < prices[1] < prices[2]

    def test_deep_itm_call_with_dividends_exercised(self):
        s = make(spot=1000.0, strike=10.0, dividend_yield=0.08)
        assert price_binomial(s, 64).price == pytest.approx(990.0, rel=1e-6)

    @given(spec=call_specs())
    def test_property_bounds(self, spec):
        lo, hi = intrinsic_bounds(spec)
        v = price_binomial(spec, 64).price
        assert lo - 1e-8 * spec.strike <= v <= hi + 1e-8 * spec.strike


class TestBermudan:
    def test_no_dates_equals_european(self):
        s = make(right=Right.PUT, style=Style.BERMUDAN)
        eu = price_binomial(make(right=Right.PUT, style=Style.EUROPEAN), 64).price
        bm = price_binomial(s, 64, exercise_steps=[]).price
        assert bm == pytest.approx(eu, abs=1e-12)

    def test_all_dates_equals_american(self):
        s = make(right=Right.PUT, style=Style.BERMUDAN)
        am = price_binomial(make(right=Right.PUT), 64).price
        bm = price_binomial(s, 64, exercise_steps=range(64)).price
        assert bm == pytest.approx(am, abs=1e-12)

    def test_sandwiched_between_european_and_american(self):
        s = make(right=Right.PUT, style=Style.BERMUDAN)
        eu = price_binomial(make(right=Right.PUT, style=Style.EUROPEAN), 64).price
        am = price_binomial(make(right=Right.PUT), 64).price
        bm = price_binomial(s, 64, exercise_steps=[16, 32, 48]).price
        assert eu - 1e-12 <= bm <= am + 1e-12

    def test_more_dates_never_hurts(self):
        s = make(right=Right.PUT, style=Style.BERMUDAN)
        few = price_binomial(s, 64, exercise_steps=[32]).price
        more = price_binomial(s, 64, exercise_steps=[16, 32, 48]).price
        assert more >= few - 1e-12

    def test_exercise_steps_validated(self):
        s = make(style=Style.BERMUDAN)
        with pytest.raises(ValidationError):
            price_binomial(s, 16, exercise_steps=[20])
        with pytest.raises(ValidationError):
            price_binomial(make(), 16, exercise_steps=[4])  # American + steps

    def test_bermudan_requires_steps(self):
        with pytest.raises(ValidationError):
            price_binomial(make(style=Style.BERMUDAN), 16)


class TestBoundary:
    def test_boundary_invariants_paper_spec(self):
        r = price_binomial(paper_benchmark_spec(), 256, return_boundary=True)
        violations = check_tree_boundary_invariants(
            r.boundary, steps=256, columns_per_row=1
        )
        assert violations == []

    def test_boundary_red_prefix_matches_values(self):
        """The reported divider must agree with a direct mask computation."""
        spec = paper_benchmark_spec()
        r = price_binomial(spec, 64, return_boundary=True)
        from repro.options.params import BinomialParams

        p = BinomialParams.from_spec(spec, 64)
        # recompute rows 63 and 0 by hand
        import numpy as np

        vals = np.maximum(p.exercise_value(64, np.arange(65)), 0.0)
        cont = p.s0 * vals[:64] + p.s1 * vals[1:65]
        exer = p.exercise_value(63, np.arange(64))
        mask = cont >= exer
        assert is_prefix_mask(mask)
        assert r.boundary[63] == np.argmin(mask) - 1 if not mask.all() else 63

    def test_put_boundary_is_green_prefix(self):
        s = make(right=Right.PUT)
        r = price_binomial(s, 64, return_boundary=True)
        # for a put the divider is the exercise prefix: it must be a valid
        # column index or -1 at every row
        assert np.all(r.boundary >= -1)
        assert np.all(r.boundary <= np.arange(65))

    def test_metadata(self):
        r = price_binomial(make(), 32)
        assert r.steps == 32
        assert r.cells == sum(i + 1 for i in range(33))
        assert r.workspan.work > 0
        assert r.meta["model"] == "binomial"


class TestErrors:
    def test_zero_steps(self):
        with pytest.raises(ValidationError):
            price_binomial(make(), 0)

    def test_fractional_steps(self):
        with pytest.raises(ValidationError):
            price_binomial(make(), 2.5)
