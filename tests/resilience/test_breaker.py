"""Circuit breaker state machine, every transition pinned on a fake clock."""

import pytest

from repro.resilience import BreakerPolicy, CircuitBreaker, CircuitOpenError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.util.validation import ValidationError


def make(fake_clock, **kw):
    defaults = dict(
        failure_threshold=3, reset_timeout=30.0, half_open_max=1,
        success_threshold=1,
    )
    defaults.update(kw)
    return CircuitBreaker(BreakerPolicy(**defaults), clock=fake_clock)


class TestClosedToOpen:
    def test_consecutive_failures_trip(self, fake_clock):
        b = make(fake_clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()

    def test_success_resets_the_streak(self, fake_clock):
        b = make(fake_clock)
        b.record_failure()
        b.record_failure()
        b.record_success()  # streak broken
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED

    def test_retry_after_counts_down(self, fake_clock):
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        assert b.retry_after() == 30.0
        fake_clock.advance(12.0)
        assert b.retry_after() == 18.0


class TestOpenToHalfOpen:
    def test_reset_timeout_admits_probe(self, fake_clock):
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(29.0)
        assert not b.allow()
        fake_clock.advance(1.0)  # exactly reset_timeout
        assert b.state == HALF_OPEN
        assert b.allow()  # the probe

    def test_probe_cap(self, fake_clock):
        b = make(fake_clock, half_open_max=2, success_threshold=2)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(30.0)
        assert b.allow()
        assert b.allow()
        assert not b.allow()  # both probe slots consumed


class TestHalfOpenOutcomes:
    def test_probe_success_closes(self, fake_clock):
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(30.0)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens_and_restarts_timer(self, fake_clock):
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(30.0)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert b.retry_after() == 30.0  # full reset, not the remainder

    def test_success_threshold_needs_multiple_probes(self, fake_clock):
        b = make(fake_clock, half_open_max=2, success_threshold=2)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(30.0)
        assert b.allow()
        b.record_success()
        assert b.state == HALF_OPEN  # one success is not enough
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED


class TestRejectAndStats:
    def test_reject_payload(self, fake_clock):
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(10.0)
        err = b.reject(("binomial", "fft", 512))
        assert isinstance(err, CircuitOpenError)
        assert err.bucket == ("binomial", "fft", 512)
        assert err.retry_after == 20.0

    def test_stats_counters(self, fake_clock):
        b = make(fake_clock)
        b.record_success()
        for _ in range(3):
            b.record_failure()
        b.allow()
        s = b.stats()
        assert s["state"] == OPEN
        assert s["successes"] == 1
        assert s["failures"] == 3
        assert s["rejections"] == 1
        assert s["opens"] == 1

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValidationError):
            BreakerPolicy(reset_timeout=0.0)
        with pytest.raises(ValidationError):
            # could never close
            BreakerPolicy(half_open_max=1, success_threshold=2)

    def test_straggler_failures_while_open_do_not_retrip(self, fake_clock):
        # failures reported by solves that started before the trip must
        # not restart the reset timer
        b = make(fake_clock)
        for _ in range(3):
            b.record_failure()
        fake_clock.advance(15.0)
        b.record_failure()  # straggler
        assert b.retry_after() == 15.0
