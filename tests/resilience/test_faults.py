"""FaultPlan determinism and the output-validation detector."""

import pytest

from repro.core.api import PricingResult
from repro.resilience import FaultPlan, InjectedCrash
from repro.resilience.faults import CorruptedResult, validate_row
from repro.resilience.markers import failure_result, timeout_result
from repro.util.validation import ValidationError


def served(price=3.14):
    return PricingResult(price, 64, "binomial", "fft")


class TestPlanMechanics:
    def test_crash_budget_by_attempt(self):
        plan = FaultPlan(crashes={2: 2})
        with pytest.raises(InjectedCrash):
            plan.before(2, 0)
        with pytest.raises(InjectedCrash):
            plan.before(2, 1)
        plan.before(2, 2)  # budget exhausted: succeeds
        plan.before(0, 0)  # other cells never crash

    def test_delay_applies_every_attempt(self):
        slept = []
        plan = FaultPlan(delays={1: 0.25}, sleep=slept.append)
        plan.before(1, 0)
        plan.before(1, 1)
        plan.before(0, 0)
        assert slept == [0.25, 0.25]

    def test_corruption_budget_and_isolation(self):
        plan = FaultPlan(corrupt={0: 1})
        genuine = served()
        bad = plan.after(0, 0, genuine)
        assert bad.price != bad.price  # NaN
        assert genuine.price == 3.14  # original never mutated
        assert plan.after(0, 1, genuine) is genuine
        assert plan.after(1, 0, genuine) is genuine

    def test_exit_style_degrades_outside_pool_children(self):
        # "exit" in the parent process must raise, never kill the runner
        plan = FaultPlan(crashes={0: 1}, crash_style="exit")
        with pytest.raises(InjectedCrash):
            plan.before(0, 0)

    def test_crash_style_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan(crash_style="segfault")


class TestRandomDerivation:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42, 100, crash_rate=0.2, corrupt_rate=0.1)
        b = FaultPlan.random(42, 100, crash_rate=0.2, corrupt_rate=0.1)
        assert a.crashes == b.crashes
        assert a.corrupt == b.corrupt

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(1, 200, crash_rate=0.3)
        b = FaultPlan.random(2, 200, crash_rate=0.3)
        assert a.crashes != b.crashes

    def test_describe_round_trips_the_seed(self):
        plan = FaultPlan.random(7, 10, crash_rate=0.5, delay_rate=0.2,
                                delay=0.1)
        desc = plan.describe()
        assert desc["seed"] == 7
        assert set(desc) == {
            "seed", "crash_style", "crashes", "delays", "corrupt",
        }


class TestValidateRow:
    def test_finite_served_row_passes(self):
        validate_row(served())

    def test_nan_served_row_raises(self):
        with pytest.raises(CorruptedResult):
            validate_row(served(float("nan")))

    def test_markers_pass_through(self):
        # markers are NaN by design — they are declared, not corrupted
        validate_row(timeout_result(64, "binomial", "fft"))
        validate_row(failure_result(64, "binomial", "fft", ValueError("x")))
