"""Shared fixtures for the resilience suite.

Every test that injects faults registers its :class:`FaultPlan` here; on
any test failure the collected plans are dumped to
``fault_plan_seeds.json`` next to the pytest invocation so CI can upload
the exact reproduction recipe as an artifact (see the ``resilience`` job
in ``.github/workflows/ci.yml``).
"""

import json
import os

import pytest


class FakeClock:
    """Deterministic monotonic clock for deadline/breaker/cache tests."""

    def __init__(self, start: float = 0.0):
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def fake_clock():
    return FakeClock()


_RECORDED_PLANS: list = []
_ANY_FAILED = False


@pytest.fixture
def record_plan():
    """Call with a FaultPlan (and optionally a label) to register it for
    the CI failure artifact."""

    def _record(plan, label: str = ""):
        _RECORDED_PLANS.append({"label": label, **plan.describe()})
        return plan

    return _record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        global _ANY_FAILED
        _ANY_FAILED = True


def pytest_sessionfinish(session, exitstatus):
    if _ANY_FAILED and _RECORDED_PLANS:
        path = os.path.join(os.getcwd(), "fault_plan_seeds.json")
        with open(path, "w") as fh:
            json.dump({"plans": _RECORDED_PLANS}, fh, indent=2)
