"""RetryPolicy: backoff schedule determinism and the generic call wrapper."""

import pytest

from repro.resilience import InjectedCrash, RetryPolicy
from repro.resilience.retry import TRANSIENT
from repro.util.validation import ValidationError


class TestBackoffSchedule:
    def test_deterministic_with_seed(self):
        p = RetryPolicy(max_attempts=5, seed=123)
        assert p.delays() == p.delays()

    def test_exponential_without_jitter(self):
        p = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=10.0,
            jitter=0.0,
        )
        assert p.delays() == pytest.approx([0.1, 0.2, 0.4])

    def test_max_delay_caps(self):
        p = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=5.0,
            jitter=0.0,
        )
        assert max(p.delays()) == 5.0

    def test_jitter_bounds(self):
        p = RetryPolicy(
            max_attempts=2, base_delay=1.0, jitter=0.5, seed=7,
        )
        for _ in range(50):
            d = p.delay(0, p.rng())
            assert 0.5 <= d <= 1.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)


class TestTransience:
    def test_injected_faults_are_transient(self):
        p = RetryPolicy()
        assert p.is_transient(InjectedCrash("boom"))
        assert p.is_transient(ConnectionError())

    def test_value_errors_are_not(self):
        # a poisoned request fails identically every attempt — retrying
        # it would just burn the budget
        p = RetryPolicy()
        assert not p.is_transient(ValueError("bad spec"))
        assert ValueError not in TRANSIENT


class TestCallWrapper:
    def test_retries_then_succeeds(self):
        sleeps = []
        p = RetryPolicy(
            max_attempts=3, base_delay=0.01, jitter=0.0, sleep=sleeps.append
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedCrash("transient")
            return "ok"

        assert p.call(flaky) == "ok"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_exhausted_raises_last_error(self):
        p = RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda s: None)
        with pytest.raises(InjectedCrash):
            p.call(lambda: (_ for _ in ()).throw(InjectedCrash("always")))

    def test_non_transient_raises_immediately(self):
        calls = []
        p = RetryPolicy(max_attempts=5, base_delay=0.0, sleep=lambda s: None)

        def poisoned():
            calls.append(1)
            raise ValueError("poison")

        with pytest.raises(ValueError):
            p.call(poisoned)
        assert len(calls) == 1
