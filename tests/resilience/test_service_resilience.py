"""QuoteService resilience: deadlines, breakers, stale serves, fault plans."""

import dataclasses
import math

import numpy as np
import pytest

from repro.options.contract import Right, paper_benchmark_spec
from repro.resilience import (
    BreakerPolicy,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    RetryPolicy,
)
from repro.service import QuoteService

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)
# passes canonicalization, dies in the FD solver (Theorem 4.3 violation)
BAD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0, rate=0.9)
GOOD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0)


def strikes(n, lo=100.0, hi=160.0):
    return [
        dataclasses.replace(SPEC, strike=k) for k in np.linspace(lo, hi, n)
    ]


def quiet_retry(**kw):
    defaults = dict(
        max_attempts=3, base_delay=0.0, jitter=0.0, seed=1,
        sleep=lambda s: None,
    )
    defaults.update(kw)
    return RetryPolicy(**defaults)


class TestDeadlines:
    def test_warm_hit_ignores_expired_deadline(self, fake_clock):
        svc = QuoteService(clock=fake_clock)
        cold = svc.quote(SPEC, 96)
        r = svc.quote(SPEC, 96, deadline=Deadline(0.0, clock=fake_clock))
        assert r.meta["cache"] == "hit"
        assert r.price == cold.price

    def test_cold_with_spent_budget_raises_without_stale(self, fake_clock):
        svc = QuoteService(clock=fake_clock)
        with pytest.raises(DeadlineExceeded):
            svc.quote(SPEC, 96, deadline=Deadline(0.0, clock=fake_clock))
        assert svc.stats()["resilience"]["deadline_misses"] == 1

    def test_stale_serve_under_deadline_pressure(self, fake_clock):
        svc = QuoteService(ttl=10.0, stale_grace=60.0, clock=fake_clock)
        cold = svc.quote(SPEC, 96)
        fake_clock.advance(20.0)  # expired, inside the grace
        r = svc.quote(SPEC, 96, deadline=Deadline(0.0, clock=fake_clock))
        assert r.meta["cache"] == "stale"
        assert r.meta["stale"] is True
        assert r.meta["stale_reason"] == "deadline"
        assert r.price == cold.price  # exact when stored
        # the background refresh rode the pending queue
        assert svc.pending == 1
        svc.flush()
        assert svc.quote(SPEC, 96).meta["cache"] == "hit"
        stats = svc.stats()["resilience"]
        assert stats["stale_quotes"] == 1 and stats["refreshes"] == 1

    def test_gone_entry_does_not_serve(self, fake_clock):
        svc = QuoteService(ttl=10.0, stale_grace=5.0, clock=fake_clock)
        svc.quote(SPEC, 96)
        fake_clock.advance(20.0)  # past ttl + grace
        with pytest.raises(DeadlineExceeded):
            svc.quote(SPEC, 96, deadline=Deadline(0.0, clock=fake_clock))

    def test_quote_many_partial_deadline(self, fake_clock):
        # a live clock-free variant: the deadline is pre-spent, so every
        # cold key degrades to an explicit timeout marker; warm keys serve
        svc = QuoteService(clock=fake_clock)
        specs = strikes(4)
        warm = svc.quote(specs[0], 96)
        out = svc.quote_many(specs, 96, deadline=Deadline(0.0, clock=fake_clock))
        assert out[0].meta["cache"] == "hit"
        assert out[0].price == warm.price
        for r in out[1:]:
            assert r.meta.get("timeout") and math.isnan(r.price)

    def test_submit_carries_deadline_to_flush(self, fake_clock):
        svc = QuoteService(clock=fake_clock)
        ticket = svc.submit(
            SPEC, 96, deadline=Deadline(0.0, clock=fake_clock)
        )
        with pytest.raises(DeadlineExceeded):
            ticket.result()


class TestBreakers:
    def make_service(self, fake_clock, **kw):
        defaults = dict(
            model="bsm-fd",
            breaker=BreakerPolicy(failure_threshold=3, reset_timeout=30.0),
            clock=fake_clock,
        )
        defaults.update(kw)
        return QuoteService(**defaults)

    def trip(self, svc, n=3):
        for _ in range(n):
            with pytest.raises(Exception):
                svc.quote(BAD_BSM_PUT, 8)

    def test_trips_open_and_rejects_fast(self, fake_clock):
        svc = self.make_service(fake_clock)
        self.trip(svc)
        solves_before = svc.stats()["service"]["solves"]
        with pytest.raises(CircuitOpenError) as exc_info:
            svc.quote(BAD_BSM_PUT, 8)
        assert exc_info.value.retry_after == 30.0
        assert exc_info.value.bucket[:3] == ("bsm-fd", "fft", 8)
        # rejected before any engine work
        assert svc.stats()["service"]["solves"] == solves_before

    def test_other_buckets_unaffected(self, fake_clock):
        svc = self.make_service(fake_clock)
        self.trip(svc)
        ok = svc.quote(GOOD_BSM_PUT, 64)  # different steps → own breaker
        assert math.isfinite(ok.price)
        states = {
            k: v["state"]
            for k, v in svc.stats()["resilience"]["breakers"].items()
        }
        assert states["bsm-fd/fft/8"] == "open"
        assert states["bsm-fd/fft/64"] == "closed"

    def test_open_serves_stale_when_graced(self, fake_clock):
        svc = self.make_service(
            fake_clock, ttl=5.0, stale_grace=1000.0,
        )
        warm = svc.quote(GOOD_BSM_PUT, 8)  # seeds the bucket's cache entry
        fake_clock.advance(10.0)  # entry stale
        self.trip(svc)
        r = svc.quote(GOOD_BSM_PUT, 8)
        assert r.meta["cache"] == "stale"
        assert r.meta["stale_reason"] == "breaker_open"
        assert r.price == warm.price

    def test_half_open_probe_closes_on_success(self, fake_clock):
        svc = self.make_service(fake_clock)
        self.trip(svc)
        fake_clock.advance(30.0)
        probe = svc.quote(GOOD_BSM_PUT, 8)  # same bucket, valid contract
        assert math.isfinite(probe.price)
        states = svc.stats()["resilience"]["breakers"]
        assert states["bsm-fd/fft/8"]["state"] == "closed"

    def test_half_open_probe_failure_reopens(self, fake_clock):
        svc = self.make_service(fake_clock)
        self.trip(svc)
        fake_clock.advance(30.0)
        with pytest.raises(Exception):
            svc.quote(BAD_BSM_PUT, 8)  # failed probe
        assert (
            svc.stats()["resilience"]["breakers"]["bsm-fd/fft/8"]["state"]
            == "open"
        )

    def test_pre_solve_deadline_misses_do_not_trip_breaker(self, fake_clock):
        svc = QuoteService(
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=30.0),
            clock=fake_clock,
        )
        for k in (100.0, 110.0):
            with pytest.raises(DeadlineExceeded):
                svc.quote(
                    dataclasses.replace(SPEC, strike=k), 96,
                    deadline=Deadline(0.0, clock=fake_clock),
                )
        # both misses raised before reaching the solve gate — the breaker
        # only counts *solve* failures, so it must still be closed
        states = svc.stats()["resilience"]["breakers"]
        assert states.get("binomial/fft/96", {"state": "closed"})[
            "state"
        ] == "closed"


class TestFaultPlansThroughService:
    def test_quote_many_chaos_acceptance(self, record_plan):
        """ISSUE acceptance at the service tier: crashes recover, the
        poisoned key fails alone with an explicit marker, everything
        served is bit-identical — zero unhandled exceptions."""
        specs = strikes(6)
        clean = QuoteService().quote_many(specs, 96)
        plan = record_plan(
            FaultPlan(crashes={1: 1, 4: 10**6}, seed=21), "service-chaos"
        )
        svc = QuoteService(retry=quiet_retry(), fault_plan=plan)
        out = svc.quote_many(specs, 96)
        for i, (c, r) in enumerate(zip(clean, out)):
            if i == 4:
                assert r.meta.get("failed") and math.isnan(r.price)
                assert r.meta["cache"] == "failed"
            else:
                assert r.price == c.price, f"cell {i} drifted"
        # the failure marker must not have been cached: key 4 re-solves
        # (now fault-free — its cell index differs) instead of serving NaN
        again = svc.quote_many(specs, 96)
        assert again[0].meta["cache"] == "hit"
        assert again[4].meta["cache"] == "miss"
        assert again[4].price == clean[4].price

    def test_thread_pool_service_recovers(self, record_plan):
        specs = strikes(8)
        clean = QuoteService().quote_many(specs, 96)
        plan = record_plan(
            FaultPlan(crashes={0: 1, 6: 1}, seed=22), "service-pool"
        )
        svc = QuoteService(
            workers=2, backend="thread", workers_min_batch=2,
            retry=quiet_retry(), fault_plan=plan,
        )
        out = svc.quote_many(specs, 96)
        assert [r.price for r in out] == [c.price for c in clean]


class TestBackpressure:
    def test_structured_overload_payload(self):
        from repro.service import ServiceOverloadedError

        svc = QuoteService(max_pending=2)
        a, b, c = strikes(3)
        svc.submit(a, 96)
        svc.submit(b, 96)
        with pytest.raises(ServiceOverloadedError) as exc_info:
            svc.submit(c, 96, block=False)
        err = exc_info.value
        assert err.pending == 2 and err.max_pending == 2
        assert len(err.rejected_keys) == 1
        # the rejected key is c's canonical key — re-submittable verbatim
        from repro.service import canonical_key

        assert err.rejected_keys[0] == canonical_key(c, 96)

    def test_concurrent_submits_one_loser_gets_the_payload(self):
        # n threads race two queue slots; with block=False the losers get
        # the structured error, winners get tickets, and nothing deadlocks
        import threading

        from repro.service import ServiceOverloadedError

        svc = QuoteService(max_pending=2)
        specs = strikes(6)
        tickets, errors = [], []
        lock = threading.Lock()

        def worker(spec):
            try:
                t = svc.submit(spec, 96, block=False)
                with lock:
                    tickets.append(t)
            except ServiceOverloadedError as exc:
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in specs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tickets) + len(errors) == len(specs)
        assert len(tickets) == 2  # the queue bound held
        for err in errors:
            assert err.max_pending == 2
            assert err.rejected_keys
        # the accepted tickets still resolve
        svc.flush()
        for t in tickets:
            assert math.isfinite(t.result().price)
