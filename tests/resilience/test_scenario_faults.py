"""ScenarioEngine resilient dispatch under injected faults.

The acceptance contract: under a seeded FaultPlan injecting worker
crashes, per-solve delays past the deadline, and poisoned cells,
``price_grid`` returns *correct* results — bit-identical to the clean run
for every served cell, explicitly-marked timeouts/failures elsewhere —
with zero unhandled exceptions.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.options.contract import paper_benchmark_spec
from repro.resilience import Deadline, FaultPlan, RetryPolicy
from repro.resilience.markers import is_served, is_timeout
from repro.risk.engine import ScenarioEngine

SPEC = paper_benchmark_spec()


def strikes(n, lo=100.0, hi=160.0):
    return [
        dataclasses.replace(SPEC, strike=k) for k in np.linspace(lo, hi, n)
    ]


def quiet_retry(**kw):
    """Instant, jitter-free policy so tests never actually sleep."""
    defaults = dict(
        max_attempts=3, base_delay=0.0, jitter=0.0, seed=1,
        sleep=lambda s: None,
    )
    defaults.update(kw)
    return RetryPolicy(**defaults)


@pytest.fixture(scope="module")
def baseline():
    specs = strikes(8)
    return specs, ScenarioEngine(backend="serial").price_grid(specs, 128)


class TestBitIdenticalRecovery:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_crashes_recover_bit_identical(
        self, baseline, backend, workers, record_plan
    ):
        specs, clean = baseline
        plan = record_plan(
            FaultPlan(crashes={0: 1, 3: 2, 7: 1}, seed=11), "crash-recovery"
        )
        eng = ScenarioEngine(backend=backend, workers=workers, chunk_size=2)
        res = eng.price_grid(specs, 128, retry=quiet_retry(), fault_plan=plan)
        assert [r.price for r in res.results] == [
            r.price for r in clean.results
        ]
        assert res.meta["resilience"]["retries"] >= 3
        assert res.meta["resilience"]["failed"] == {}

    def test_corruption_detected_and_repriced(self, baseline, record_plan):
        specs, clean = baseline
        plan = record_plan(
            FaultPlan(corrupt={2: 1, 5: 1}, seed=12), "corruption"
        )
        eng = ScenarioEngine(backend="thread", workers=2, chunk_size=3)
        res = eng.price_grid(specs, 128, retry=quiet_retry(), fault_plan=plan)
        assert [r.price for r in res.results] == [
            r.price for r in clean.results
        ]
        assert res.meta["resilience"]["corrupt_detected"] == 2

    def test_same_plan_same_counters_across_backends(self, baseline, record_plan):
        # determinism: the fault schedule keys on (cell, attempt), so the
        # serial and threaded runs see the identical failure sequence
        specs, _ = baseline
        plan = record_plan(
            FaultPlan.random(99, len(specs), crash_rate=0.4, attempts=1),
            "cross-backend",
        )
        metas = []
        for backend, workers in (("serial", 1), ("thread", 2)):
            eng = ScenarioEngine(
                backend=backend, workers=workers, chunk_size=1
            )
            res = eng.price_grid(
                specs, 64, retry=quiet_retry(), fault_plan=plan
            )
            metas.append(res.meta["resilience"]["retries"])
        assert metas[0] == metas[1] == len(plan.crashes)


class TestPoisonIsolation:
    def test_poisoned_cell_fails_alone(self, baseline, record_plan):
        specs, clean = baseline
        # cell 4 crashes on every attempt — a permanently poisoned request
        plan = record_plan(FaultPlan(crashes={4: 10**6}, seed=13), "poison")
        eng = ScenarioEngine(backend="thread", workers=2, chunk_size=4)
        res = eng.price_grid(specs, 128, retry=quiet_retry(), fault_plan=plan)
        for i, (r, c) in enumerate(zip(res.results, clean.results)):
            if i == 4:
                assert math.isnan(r.price)
                assert r.meta["failed"]
                assert "InjectedCrash" in r.meta["error"]
            else:
                assert r.price == c.price
        assert 4 in res.meta["resilience"]["failed"]
        assert res.meta["resilience"]["isolated"] >= 1

    def test_without_retry_policy_failures_still_raise(self, baseline):
        # back-compat: resilience off (no retry) keeps the raise-through
        # contract even when a deadline made the dispatch resilient
        specs, _ = baseline
        plan = FaultPlan(crashes={1: 10**6}, seed=14)
        eng = ScenarioEngine(backend="serial")
        with pytest.raises(Exception):
            eng.price_grid(specs, 64, fault_plan=plan)


class TestDeadlines:
    def test_serial_preemption_marks_remaining_cells(self, fake_clock, baseline):
        specs, clean = baseline
        # the fake clock only moves when the injected delay "sleeps" on it,
        # so exactly the cells before the delayed one are served
        plan = FaultPlan(delays={3: 5.0}, sleep=fake_clock.advance, seed=15)
        deadline = Deadline(1.0, clock=fake_clock)
        eng = ScenarioEngine(backend="serial")
        res = eng.price_grid(
            specs, 128, deadline=deadline, retry=quiet_retry(),
            fault_plan=plan,
        )
        for i, (r, c) in enumerate(zip(res.results, clean.results)):
            if i < 3:
                assert r.price == c.price  # served before the budget blew
            else:
                assert is_timeout(r)
        assert res.meta["resilience"]["timeouts"] == [3, 4, 5, 6, 7]

    def test_expired_deadline_marks_everything(self, fake_clock):
        specs = strikes(4)
        fake_clock.advance(100.0)
        deadline = Deadline(1.0, clock=fake_clock)
        fake_clock.advance(2.0)
        eng = ScenarioEngine(backend="serial")
        res = eng.price_grid(specs, 64, deadline=deadline)
        assert all(is_timeout(r) for r in res.results)
        assert res.meta["resilience"]["timeouts"] == [0, 1, 2, 3]

    def test_pooled_partial_results_on_real_clock(self, baseline, record_plan):
        # wall-clock version of the same contract: slow cells miss the
        # budget and come back marked; fast cells keep bit-exact prices
        specs, clean = baseline
        plan = record_plan(
            FaultPlan(delays={6: 2.0, 7: 2.0}, seed=16), "pooled-deadline"
        )
        eng = ScenarioEngine(backend="thread", workers=2, chunk_size=1)
        res = eng.price_grid(
            specs, 128, deadline=Deadline(0.8), retry=quiet_retry(),
            fault_plan=plan,
        )
        served = [
            i for i, r in enumerate(res.results) if is_served(r)
        ]
        for i in served:
            assert res.results[i].price == clean.results[i].price
        for i, r in enumerate(res.results):
            if i not in served:
                assert is_timeout(r)
        assert not is_served(res.results[7])  # 2 s delay vs 0.8 s budget


class TestChaosAcceptance:
    def test_crashes_delays_and_poison_together(self, baseline, record_plan):
        """The ISSUE acceptance scenario in one grid: a worker crash
        (recovers), a delay past the deadline (times out), and a poisoned
        cell (fails alone) — zero unhandled exceptions, every cell
        accounted for."""
        specs, clean = baseline
        plan = record_plan(
            FaultPlan(
                crashes={1: 1, 5: 10**6}, delays={6: 3.0}, seed=17
            ),
            "chaos",
        )
        eng = ScenarioEngine(backend="thread", workers=2, chunk_size=1)
        res = eng.price_grid(
            specs, 128, deadline=Deadline(1.0), retry=quiet_retry(),
            fault_plan=plan,
        )
        rmeta = res.meta["resilience"]
        for i, (r, c) in enumerate(zip(res.results, clean.results)):
            if is_served(r):
                assert r.price == c.price, f"cell {i} drifted"
            else:
                assert is_timeout(r) or r.meta.get("failed")
        assert not is_served(res.results[6])  # delayed past budget
        assert not is_served(res.results[5])  # poisoned
        assert rmeta["retries"] >= 1  # cell 1 recovered
        assert res.results[1].price == clean.results[1].price


class TestSerialFallback:
    def test_pool_unavailable_warns_once_and_records_reason(
        self, baseline, monkeypatch
    ):
        import repro.risk.engine as engine_mod

        specs, clean = baseline

        def broken_pool(self):
            raise OSError("no semaphores on this host")

        monkeypatch.setattr(
            engine_mod.ScenarioEngine, "_make_pool", broken_pool
        )
        monkeypatch.setattr(engine_mod, "_POOL_FALLBACK_WARNED", False)
        eng = ScenarioEngine(backend="thread", workers=4, chunk_size=2)
        with pytest.warns(RuntimeWarning, match="fell back"):
            res = eng.price_grid(specs, 128)
        assert res.meta["backend"] == "serial"
        assert res.meta["fallback_reason"].startswith("pool_unavailable")
        assert "no semaphores" in res.meta["fallback_reason"]
        # identical results on the fallback path
        assert [r.price for r in res.results] == [
            r.price for r in clean.results
        ]
        # second fallback: meta only, no second warning
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            res2 = eng.price_grid(specs, 128)
        assert res2.meta["fallback_reason"].startswith("pool_unavailable")

    def test_benign_serial_reasons_recorded_without_warning(self):
        import warnings as _w

        specs = strikes(4)
        eng = ScenarioEngine(backend="thread", workers=1)
        with _w.catch_warnings():
            _w.simplefilter("error")
            res = eng.price_grid(specs, 64)
        assert res.meta["fallback_reason"] == "workers=1"
        eng2 = ScenarioEngine(backend="thread", workers=2, chunk_size=100)
        with _w.catch_warnings():
            _w.simplefilter("error")
            res2 = eng2.price_grid(specs, 64)
        assert res2.meta["fallback_reason"] == "single_chunk"

    def test_requested_serial_is_not_a_fallback(self):
        res = ScenarioEngine(backend="serial").price_grid(strikes(4), 64)
        assert "fallback_reason" not in res.meta


class TestProcessPoolRebuild:
    def test_exit_crash_rebuilds_pool_bit_identical(self, baseline, record_plan):
        # a REAL dead worker: os._exit in the child drives
        # BrokenProcessPool; the dispatcher rebuilds and re-prices only
        # the dead worker's chunks
        specs, clean = baseline
        plan = record_plan(
            FaultPlan(crashes={2: 1}, crash_style="exit", seed=18),
            "exit-crash",
        )
        eng = ScenarioEngine(backend="process", workers=2, chunk_size=2)
        res = eng.price_grid(specs, 64, retry=quiet_retry(), fault_plan=plan)
        assert res.meta["resilience"]["pool_rebuilds"] >= 1
        clean64 = ScenarioEngine(backend="serial").price_grid(specs, 64)
        assert [r.price for r in res.results] == [
            r.price for r in clean64.results
        ]
