"""Deadline budgets on an injected clock."""

import pytest

from repro.resilience import Deadline, DeadlineExceeded, effective_deadline
from repro.util.validation import ValidationError


class TestDeadline:
    def test_remaining_counts_down(self, fake_clock):
        d = Deadline(10.0, clock=fake_clock)
        assert d.remaining() == 10.0
        fake_clock.advance(4.0)
        assert d.remaining() == 6.0
        assert not d.expired

    def test_expires_at_boundary_exactly(self, fake_clock):
        d = Deadline(10.0, clock=fake_clock)
        fake_clock.advance(10.0)
        assert d.expired
        assert d.remaining() == 0.0

    def test_remaining_clamps_at_zero(self, fake_clock):
        d = Deadline(1.0, clock=fake_clock)
        fake_clock.advance(5.0)
        assert d.remaining() == 0.0

    def test_zero_budget_is_born_expired(self, fake_clock):
        assert Deadline(0.0, clock=fake_clock).expired

    def test_check_raises_with_label(self, fake_clock):
        d = Deadline(1.0, clock=fake_clock)
        d.check("solve")  # within budget: no-op
        fake_clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="solve"):
            d.check("solve")

    def test_checkpoint_is_timeout_error(self, fake_clock):
        # DeadlineExceeded must be catchable as TimeoutError — callers
        # treat budget misses like any other timeout
        d = Deadline(0.0, clock=fake_clock)
        with pytest.raises(TimeoutError):
            d.checkpoint()

    def test_sleep_budget_clamps(self, fake_clock):
        d = Deadline(3.0, clock=fake_clock)
        assert d.sleep_budget(10.0) == 3.0
        assert d.sleep_budget(1.0) == 1.0
        fake_clock.advance(3.0)
        assert d.sleep_budget(1.0) == 0.0

    def test_after_alias(self, fake_clock):
        assert Deadline.after(5.0, clock=fake_clock).remaining() == 5.0

    def test_validation(self, fake_clock):
        with pytest.raises(ValidationError):
            Deadline(-1.0, clock=fake_clock)
        with pytest.raises(ValidationError):
            Deadline(float("nan"), clock=fake_clock)
        with pytest.raises(ValidationError):
            Deadline(float("inf"), clock=fake_clock)


class TestEffectiveDeadline:
    def test_tightest_wins(self, fake_clock):
        loose = Deadline(10.0, clock=fake_clock)
        tight = Deadline(2.0, clock=fake_clock)
        assert effective_deadline([loose, None, tight]) is tight

    def test_all_none(self):
        assert effective_deadline([None, None]) is None
        assert effective_deadline([]) is None
