"""Flight recorder: the journal reconstructs every recovery story.

The contract mirrors ``res.meta["resilience"]``: each incident the
dispatcher handles (retry, pool rebuild, chunk isolation, corruption,
timeout marker, terminal failure) appears in the journal exactly once,
stamped with the span id of the dispatch span it happened under — so a
trace tree and a journal slice can be correlated after the fact.  The
recorder itself must never perturb prices: every chaos grid is
bit-compared against the same plan replayed without telemetry.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.obs import Telemetry
from repro.options.contract import Right, paper_benchmark_spec
from repro.resilience import BreakerPolicy, Deadline, FaultPlan, RetryPolicy
from repro.resilience.markers import is_served, is_timeout
from repro.risk.engine import ScenarioEngine
from repro.service import QuoteService

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)
# passes canonicalization, dies in the FD solver (Theorem 4.3 violation)
BAD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0, rate=0.9)
GOOD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0)


def strikes(n, lo=100.0, hi=160.0):
    return [
        dataclasses.replace(SPEC, strike=k) for k in np.linspace(lo, hi, n)
    ]


def quiet_retry(**kw):
    defaults = dict(
        max_attempts=3, base_delay=0.0, jitter=0.0, seed=1,
        sleep=lambda s: None,
    )
    defaults.update(kw)
    return RetryPolicy(**defaults)


def journal_counts(tel):
    return tel.journal.counts()


def assert_journal_matches_rmeta(tel, rmeta):
    """Every incident counter in the resilience meta has exactly one
    journal event per increment — the recovery story is complete."""
    counts = journal_counts(tel)
    assert counts.get("retry", 0) == rmeta["retries"]
    assert counts.get("pool_rebuild", 0) == rmeta["pool_rebuilds"]
    assert counts.get("isolate", 0) == rmeta["isolated"]
    assert counts.get("corrupt_detected", 0) == rmeta["corrupt_detected"]
    assert counts.get("timeout_marker", 0) == len(rmeta["timeouts"])
    assert counts.get("cell_failed", 0) == len(rmeta["failed"])


def dispatch_span_id(tel):
    root = tel.tracer.last_trace()
    assert root["name"] == "grid"
    (dispatch,) = [c for c in root["children"] if c["name"] == "dispatch"]
    return dispatch["id"]


@pytest.fixture(scope="module")
def baseline():
    specs = strikes(8)
    return specs, ScenarioEngine(backend="serial").price_grid(specs, 128)


class TestChaosRecoveryStory:
    def test_journal_reconstructs_thread_chaos_exactly_once(
        self, baseline, record_plan
    ):
        """The ISSUE acceptance scenario: crash (recovers), poison
        (isolated, fails alone), delay past the deadline (times out) —
        and the journal tells the whole story, one event per incident."""
        specs, clean = baseline

        def run(telemetry):
            plan = record_plan(
                FaultPlan(
                    crashes={1: 1, 5: 10**6}, delays={6: 3.0}, seed=21
                ),
                "flight-recorder-chaos",
            )
            eng = ScenarioEngine(
                backend="thread", workers=2, chunk_size=1,
                telemetry=telemetry,
            )
            return eng.price_grid(
                specs, 128, deadline=Deadline(1.0), retry=quiet_retry(),
                fault_plan=plan,
            )

        tel = Telemetry()
        res = run(tel)
        rmeta = res.meta["resilience"]
        assert rmeta["retries"] >= 1  # cell 1 recovered
        assert not is_served(res.results[5])  # poisoned
        assert_journal_matches_rmeta(tel, rmeta)

        # when anything timed out, the budget blew exactly once
        deadlines = tel.journal.events("deadline_expired")
        assert len(deadlines) == (1 if rmeta["timeouts"] else 0)

        # every incident happened under the dispatch span of this grid
        did = dispatch_span_id(tel)
        incidents = [
            e for e in tel.journal.events()
            if e.type in (
                "retry", "isolate", "cell_failed", "timeout_marker",
                "deadline_expired", "corrupt_detected",
            )
        ]
        assert incidents, "chaos run produced no journal events"
        assert all(e.span_id == did for e in incidents)

        # each timeout marker names its cell, matching rmeta
        marked = sorted(
            e.fields["cell"] for e in tel.journal.events("timeout_marker")
        )
        assert marked == rmeta["timeouts"]

        # served cells stay bit-exact despite the recorder
        for i, (r, c) in enumerate(zip(res.results, clean.results)):
            if is_served(r):
                assert r.price == c.price, f"cell {i} drifted"

    def test_recorder_never_changes_prices(self, baseline, record_plan):
        specs, _ = baseline
        with_tel = ScenarioEngine(
            backend="thread", workers=2, chunk_size=2, telemetry=Telemetry()
        ).price_grid(
            specs, 96, retry=quiet_retry(),
            fault_plan=record_plan(
                FaultPlan(crashes={0: 1, 4: 2}, corrupt={6: 1}, seed=22),
                "recorder-on",
            ),
        )
        without = ScenarioEngine(
            backend="thread", workers=2, chunk_size=2
        ).price_grid(
            specs, 96, retry=quiet_retry(),
            fault_plan=FaultPlan(crashes={0: 1, 4: 2}, corrupt={6: 1}, seed=22),
        )
        assert [r.price for r in with_tel.results] == [
            r.price for r in without.results
        ]
        assert with_tel.meta["resilience"] == without.meta["resilience"]


class TestSerialIncidents:
    def test_retry_corruption_and_failure_events(
        self, baseline, record_plan
    ):
        specs, clean = baseline
        tel = Telemetry()
        plan = record_plan(
            FaultPlan(
                crashes={1: 1, 3: 10**6}, corrupt={5: 1}, seed=23
            ),
            "serial-incidents",
        )
        eng = ScenarioEngine(backend="serial", telemetry=tel)
        res = eng.price_grid(
            specs, 128, retry=quiet_retry(), fault_plan=plan
        )
        rmeta = res.meta["resilience"]
        assert rmeta["corrupt_detected"] == 1
        assert list(rmeta["failed"]) == [3]
        assert_journal_matches_rmeta(tel, rmeta)
        # the event fields name the cells, not just the counts
        assert [e.fields["cell"] for e in tel.journal.events("cell_failed")] \
            == [3]
        corrupt = tel.journal.events("corrupt_detected")
        assert [e.fields["cell"] for e in corrupt] == [5]
        retried = {e.fields["cell"] for e in tel.journal.events("retry")}
        assert {1, 5}.issubset(retried) or {1}.issubset(retried)
        # cell 3's exhausted attempts also appear as retries
        assert journal_counts(tel)["retry"] == rmeta["retries"]
        for i, r in enumerate(res.results):
            if is_served(r):
                assert r.price == clean.results[i].price

    def test_deadline_expiry_announced_once_with_markers(
        self, fake_clock, record_plan
    ):
        specs = strikes(8)
        tel = Telemetry()
        plan = record_plan(
            FaultPlan(delays={3: 5.0}, sleep=fake_clock.advance, seed=24),
            "serial-deadline",
        )
        eng = ScenarioEngine(backend="serial", telemetry=tel)
        res = eng.price_grid(
            specs, 96, deadline=Deadline(1.0, clock=fake_clock),
            retry=quiet_retry(), fault_plan=plan,
        )
        rmeta = res.meta["resilience"]
        assert rmeta["timeouts"] == [3, 4, 5, 6, 7]
        (expired,) = tel.journal.events("deadline_expired")
        assert expired.fields == {"budget_s": 1.0, "first_cell": 3}
        markers = tel.journal.events("timeout_marker")
        assert [e.fields["cell"] for e in markers] == [3, 4, 5, 6, 7]
        # the mid-solve preemption reads differently from the pre-checks
        assert markers[0].fields["detail"] == "preempted mid-solve"
        assert all(
            m.fields["detail"] == "budget spent before solve"
            for m in markers[1:]
        )
        assert_journal_matches_rmeta(tel, rmeta)


class TestProcessPoolRebuild:
    def test_rebuild_event_correlates_with_rmeta(
        self, baseline, record_plan
    ):
        specs, _ = baseline
        tel = Telemetry()
        plan = record_plan(
            FaultPlan(crashes={2: 1}, crash_style="exit", seed=25),
            "recorded-exit-crash",
        )
        eng = ScenarioEngine(
            backend="process", workers=2, chunk_size=2, telemetry=tel
        )
        res = eng.price_grid(
            specs, 64, retry=quiet_retry(), fault_plan=plan
        )
        rmeta = res.meta["resilience"]
        assert rmeta["pool_rebuilds"] >= 1
        assert_journal_matches_rmeta(tel, rmeta)
        rebuilds = tel.journal.events("pool_rebuild")
        assert [e.fields["generation"] for e in rebuilds] == list(
            range(1, len(rebuilds) + 1)
        )
        did = dispatch_span_id(tel)
        assert all(e.span_id == did for e in rebuilds)
        clean64 = ScenarioEngine(backend="serial").price_grid(specs, 64)
        assert [r.price for r in res.results] == [
            r.price for r in clean64.results
        ]


class TestPoolFallbackCoverage:
    def _fallback_count(self, tel, reason):
        sample = f'risk_pool_fallbacks_total{{reason="{reason}"}}'
        for line in tel.registry.to_prometheus().splitlines():
            if line.startswith(sample):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    def test_benign_workers_1_counted_and_journalled_silently(self):
        tel = Telemetry()
        eng = ScenarioEngine(backend="thread", workers=1, telemetry=tel)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = eng.price_grid(strikes(4), 64)
        assert res.meta["fallback_reason"] == "workers=1"
        assert self._fallback_count(tel, "workers=1") == 1.0
        (ev,) = tel.journal.events("pool_fallback")
        assert ev.fields["reason"] == "workers=1"
        assert ev.fields["backend"] == "thread"
        assert ev.fields["cells"] == 4

    def test_benign_single_chunk_counted_and_journalled_silently(self):
        tel = Telemetry()
        eng = ScenarioEngine(
            backend="thread", workers=2, chunk_size=100, telemetry=tel
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = eng.price_grid(strikes(4), 64)
        assert res.meta["fallback_reason"] == "single_chunk"
        assert self._fallback_count(tel, "single_chunk") == 1.0
        (ev,) = tel.journal.events("pool_fallback")
        assert ev.fields["reason"] == "single_chunk"

    def test_pool_unavailable_still_warns_and_is_counted(self, monkeypatch):
        import repro.risk.engine as engine_mod

        def broken_pool(self):
            raise OSError("no semaphores on this host")

        monkeypatch.setattr(
            engine_mod.ScenarioEngine, "_make_pool", broken_pool
        )
        monkeypatch.setattr(engine_mod, "_POOL_FALLBACK_WARNED", False)
        tel = Telemetry()
        eng = ScenarioEngine(
            backend="thread", workers=4, chunk_size=2, telemetry=tel
        )
        with pytest.warns(RuntimeWarning, match="fell back"):
            eng.price_grid(strikes(4), 64)
        assert self._fallback_count(tel, "pool_unavailable") == 1.0
        (ev,) = tel.journal.events("pool_fallback")
        assert ev.fields["reason"].startswith("pool_unavailable")
        assert "no semaphores" in ev.fields["reason"]

    def test_requested_serial_emits_nothing(self):
        tel = Telemetry()
        ScenarioEngine(backend="serial", telemetry=tel).price_grid(
            strikes(4), 64
        )
        assert tel.journal.events("pool_fallback") == []
        assert self._fallback_count(tel, "workers=1") == 0.0

    def test_every_grid_repeats_the_event(self):
        # fallbacks are per-grid facts: two degraded grids, two events
        tel = Telemetry()
        eng = ScenarioEngine(backend="thread", workers=1, telemetry=tel)
        eng.price_grid(strikes(2), 64)
        eng.price_grid(strikes(2), 64)
        assert len(tel.journal.events("pool_fallback")) == 2
        assert self._fallback_count(tel, "workers=1") == 2.0


class TestBreakerTransitions:
    def test_trip_probe_and_close_are_journalled(self, fake_clock):
        tel = Telemetry()
        svc = QuoteService(
            model="bsm-fd", telemetry=tel, clock=fake_clock,
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=30.0),
        )
        for _ in range(2):
            with pytest.raises(Exception):
                svc.quote(BAD_BSM_PUT, 8)
        trans = [
            (e.fields["old"], e.fields["new"])
            for e in tel.journal.events("breaker_transition")
        ]
        assert trans == [("closed", "open")]
        fake_clock.advance(30.0)
        svc.quote(GOOD_BSM_PUT, 8)  # half-open probe succeeds
        trans = [
            (e.fields["old"], e.fields["new"])
            for e in tel.journal.events("breaker_transition")
        ]
        assert trans == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert all(
            e.fields["bucket"] == "bsm-fd/fft/8"
            for e in tel.journal.events("breaker_transition")
        )
