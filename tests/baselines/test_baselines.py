"""Tests for the Θ(T²) baseline family (all must agree with the loop oracle)."""

import dataclasses

import pytest
from hypothesis import given

from repro.baselines import (
    BASELINES,
    binomial_nested_loop_pure,
    binomial_vectorised_loop,
    get_baseline,
    oblivious_bopm,
    ql_bopm,
    tiled_bopm,
    zb_bopm,
)
from repro.lattice.binomial import price_binomial
from repro.options.contract import Right, Style, paper_benchmark_spec
from repro.util.validation import ValidationError
from tests.conftest import call_specs

SPEC = paper_benchmark_spec()


class TestAgreement:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    @pytest.mark.parametrize("T", [1, 2, 7, 33, 128])
    def test_matches_loop_oracle(self, name, T):
        if name == "loop-pure" and T > 33:
            pytest.skip("pure-python oracle kept tiny")
        ref = price_binomial(SPEC, T).price
        v = BASELINES[name](SPEC, T).price
        assert v == pytest.approx(ref, abs=1e-10 * SPEC.strike), name

    @given(spec=call_specs())
    def test_property_zb_equals_loop(self, spec):
        assert zb_bopm(spec, 48).price == pytest.approx(
            price_binomial(spec, 48).price, abs=1e-10 * spec.strike
        )

    @given(spec=call_specs())
    def test_property_oblivious_equals_loop(self, spec):
        assert oblivious_bopm(spec, 33).price == pytest.approx(
            price_binomial(spec, 33).price, abs=1e-10 * spec.strike
        )

    def test_pure_loop_matches_vectorised_bitwise_scale(self):
        a = binomial_nested_loop_pure(SPEC, 64).price
        b = binomial_vectorised_loop(SPEC, 64).price
        assert a == pytest.approx(b, abs=1e-12)


class TestTiled:
    @pytest.mark.parametrize("geometry", [(4, 4), (16, 8), (3, 64), (1000, 1000)])
    def test_tile_geometry_invariance(self, geometry):
        b, w = geometry
        ref = price_binomial(SPEC, 100).price
        v = tiled_bopm(SPEC, 100, block_rows=b, tile_width=w).price
        assert v == pytest.approx(ref, abs=1e-10)

    def test_geometry_validation(self):
        with pytest.raises(ValidationError):
            tiled_bopm(SPEC, 16, block_rows=0)

    def test_work_counts_overlap(self):
        """Smaller tiles re-compute more halo cells: cells must increase."""
        wide = tiled_bopm(SPEC, 256, block_rows=32, tile_width=256).cells
        narrow = tiled_bopm(SPEC, 256, block_rows=32, tile_width=16).cells
        assert narrow > wide


class TestOblivious:
    @pytest.mark.parametrize("base_height", [1, 2, 8, 64])
    def test_base_height_invariance(self, base_height):
        ref = price_binomial(SPEC, 65).price
        v = oblivious_bopm(SPEC, 65, base_height=base_height).price
        assert v == pytest.approx(ref, abs=1e-10)

    def test_span_annotation_superlinear(self):
        r = oblivious_bopm(SPEC, 128)
        assert r.workspan.span > 128  # Theta(T^{log2 3})


class TestGuards:
    @pytest.mark.parametrize(
        "fn", [ql_bopm, zb_bopm, tiled_bopm, oblivious_bopm, binomial_nested_loop_pure]
    )
    def test_rejects_put(self, fn):
        spec = dataclasses.replace(SPEC, right=Right.PUT)
        with pytest.raises(ValidationError):
            fn(spec, 8)

    def test_rejects_european(self):
        with pytest.raises(ValidationError):
            ql_bopm(SPEC.with_style(Style.EUROPEAN), 8)

    def test_registry_lookup(self):
        assert get_baseline("zb") is zb_bopm
        with pytest.raises(ValidationError, match="unknown baseline"):
            get_baseline("nope")


class TestWorkAnnotation:
    @pytest.mark.parametrize("name", ["loop", "ql", "zb", "tiled"])
    def test_quadratic_work(self, name):
        fn = BASELINES[name]
        w1 = fn(SPEC, 128).workspan.work
        w2 = fn(SPEC, 512).workspan.work
        assert 10.0 < w2 / w1 < 25.0  # ~16x for 4x T
