"""Tests for the work–span algebra and cost helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.workspan import (
    WorkSpan,
    fft_cost,
    fft_convolution_cost,
    rows_cost,
    stencil_cell_flops,
)

ws_values = st.builds(
    WorkSpan, work=st.floats(0.0, 1e9), span=st.floats(0.0, 1e6)
)


class TestAlgebra:
    def test_then_adds_both(self):
        a, b = WorkSpan(10, 2), WorkSpan(5, 3)
        c = a.then(b)
        assert c.work == 15 and c.span == 5

    def test_beside_maxes_span(self):
        a, b = WorkSpan(10, 2), WorkSpan(5, 3)
        c = a.beside(b)
        assert c.work == 15 and c.span == 3

    def test_operators(self):
        a, b = WorkSpan(1, 1), WorkSpan(2, 2)
        assert (a + b) == a.then(b)
        assert (a | b) == a.beside(b)

    def test_zero_identity(self):
        a = WorkSpan(7, 3)
        assert a.then(WorkSpan.ZERO) == a
        assert a.beside(WorkSpan.ZERO) == a

    @given(a=ws_values, b=ws_values, c=ws_values)
    def test_property_then_associative(self, a, b, c):
        lhs = a.then(b).then(c)
        rhs = a.then(b.then(c))
        assert lhs.work == pytest.approx(rhs.work)
        assert lhs.span == pytest.approx(rhs.span)

    @given(a=ws_values, b=ws_values)
    def test_property_span_bounds(self, a, b):
        assert a.beside(b).span <= a.then(b).span


class TestBrent:
    def test_p1_is_work(self):
        assert WorkSpan(100, 5).brent_time(1) == 105.0

    def test_large_p_approaches_span(self):
        ws = WorkSpan(1e6, 10)
        assert ws.brent_time(10**9) == pytest.approx(10.0, rel=1e-3)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            WorkSpan(1, 1).brent_time(0)

    def test_parallelism(self):
        assert WorkSpan(100, 4).parallelism == 25.0
        assert WorkSpan(0, 0).parallelism == 1.0
        assert WorkSpan(5, 0).parallelism == math.inf

    @given(ws=ws_values, p=st.integers(1, 1024))
    def test_property_brent_window(self, ws, p):
        tp = ws.brent_time(p)
        assert tp >= max(ws.work / p, ws.span) - 1e-9
        assert tp <= ws.work + ws.span + 1e-9


class TestCosts:
    def test_fft_cost_nlogn(self):
        assert fft_cost(1024).work == pytest.approx(5 * 1024 * 10)

    def test_fft_cost_tiny(self):
        assert fft_cost(1).work == 1.0

    def test_fft_span_sublinear(self):
        assert fft_cost(1 << 20).span < 200

    def test_conv_cost_triple_transform(self):
        c = fft_convolution_cost(10, 100, 50)
        assert c.work > 3 * fft_cost(149).work

    def test_rows_cost_linear_in_rows(self):
        one = rows_cost(1, 100, 2)
        ten = rows_cost(10, 100, 2)
        assert ten.work == pytest.approx(10 * one.work)
        assert ten.span == pytest.approx(10 * one.span)

    def test_stencil_cell_flops(self):
        assert stencil_cell_flops(2) == 4.0
        assert stencil_cell_flops(3) == 6.0
