"""Tests for the calibrated runtime model."""

import pytest

from repro.parallel.runtime_model import RuntimeModel, calibrate_flop_rate
from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError


def test_calibration_roundtrip():
    ws = WorkSpan(1e9, 1e4)
    model = RuntimeModel.from_measurement(ws, 0.5)
    assert model.predict_seconds(ws, 1) == pytest.approx(0.5)


def test_calibrate_flop_rate():
    assert calibrate_flop_rate(WorkSpan(2e9, 1), 2.0) == pytest.approx(1e9)


def test_calibrate_rejects_zero_work():
    with pytest.raises(ValidationError):
        calibrate_flop_rate(WorkSpan(0, 0), 1.0)


def test_calibrate_rejects_zero_time():
    with pytest.raises(ValidationError):
        calibrate_flop_rate(WorkSpan(1, 1), 0.0)


def test_parallel_prediction_monotone_until_overhead():
    ws = WorkSpan(1e9, 1e3)
    model = RuntimeModel.from_measurement(ws, 1.0)
    t2 = model.predict_seconds(ws, 2)
    t8 = model.predict_seconds(ws, 8)
    assert t8 < t2 < 1.0


def test_low_parallelism_plateaus():
    """A span-bound workload stops scaling (the paper's fft-bopm Table 5 row)."""
    ws = WorkSpan(1e6, 1e5)  # parallelism 10
    model = RuntimeModel.from_measurement(ws, 1.0)
    t8 = model.predict_seconds(ws, 8)
    t48 = model.predict_seconds(ws, 48)
    assert t48 > 0.5 * t8  # barely improves past p=8


def test_predict_curve_keys():
    ws = WorkSpan(1e6, 1e2)
    model = RuntimeModel.from_measurement(ws, 1.0)
    curve = model.predict_curve(ws, (1, 2, 48))
    assert set(curve) == {1, 2, 48}


def test_overheads_only_for_parallel_runs():
    ws = WorkSpan(1e6, 1e2)
    model = RuntimeModel(flop_rate=1e6, sync_overhead_s=1.0)
    assert model.predict_seconds(ws, 1) == pytest.approx(1.0001)
    assert model.predict_seconds(ws, 2) > 1.0  # overhead applied
