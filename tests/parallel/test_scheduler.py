"""Tests for the task-DAG greedy scheduler (Brent-bound invariants)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.scheduler import (
    GreedyScheduler,
    TaskGraph,
    simulate_brent,
    speedup_curve,
)
from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError


def chain(n, cost=1.0):
    g = TaskGraph()
    prev = []
    for i in range(n):
        g.add(f"t{i}", cost, prev)
        prev = [f"t{i}"]
    return g


def independent(n, cost=1.0):
    g = TaskGraph()
    for i in range(n):
        g.add(f"t{i}", cost)
    return g


class TestTaskGraph:
    def test_work_and_span_chain(self):
        g = chain(10)
        assert g.work == 10.0
        assert g.span == 10.0

    def test_work_and_span_independent(self):
        g = independent(10)
        assert g.work == 10.0
        assert g.span == 1.0

    def test_diamond_span(self):
        g = TaskGraph()
        g.add("a", 1.0)
        g.add("b", 5.0, ["a"])
        g.add("c", 2.0, ["a"])
        g.add("d", 1.0, ["b", "c"])
        assert g.span == 7.0  # a -> b -> d
        assert g.work == 9.0

    def test_duplicate_id_rejected(self):
        g = TaskGraph()
        g.add("a", 1.0)
        with pytest.raises(ValidationError):
            g.add("a", 1.0)

    def test_unknown_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValidationError):
            g.add("a", 1.0, ["ghost"])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            TaskGraph().add("a", -1.0)


class TestGreedyScheduler:
    def test_chain_not_parallelisable(self):
        assert GreedyScheduler(8).run(chain(20)) == 20.0

    def test_independent_perfect_speedup(self):
        assert GreedyScheduler(4).run(independent(20)) == 5.0

    def test_single_processor_is_work(self):
        g = independent(7, cost=2.0)
        assert GreedyScheduler(1).run(g) == 14.0

    def test_diamond(self):
        g = TaskGraph()
        g.add("a", 1.0)
        g.add("b", 5.0, ["a"])
        g.add("c", 2.0, ["a"])
        g.add("d", 1.0, ["b", "c"])
        assert GreedyScheduler(2).run(g) == 7.0

    def test_empty_graph(self):
        assert GreedyScheduler(4).run(TaskGraph()) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            GreedyScheduler(0)

    def test_wide_dag_fast_and_in_brent_window(self):
        """A 1-root/10k-leaf fan-out: the ready queue holds every leaf at
        once — the old list.pop(0) drain made this O(n²).  Must stay fast
        and still land inside Brent's window."""
        import time

        n, p = 10_000, 7
        g = TaskGraph()
        g.add("root", 1.0)
        for i in range(n):
            g.add(f"leaf{i}", 1.0, ["root"])
        t0 = time.perf_counter()
        makespan = GreedyScheduler(p).run(g)
        elapsed = time.perf_counter() - t0
        t1, tinf = g.work, g.span
        assert makespan >= max(t1 / p, tinf) - 1e-9
        assert makespan <= t1 / p + tinf + 1e-9
        # exact for this shape: root, then ceil(n/p) leaf waves
        assert makespan == 1.0 + -(-n // p) * 1.0
        assert elapsed < 2.0  # seconds; the quadratic drain took far longer

    @given(
        n=st.integers(1, 40),
        p=st.integers(1, 8),
        fanout=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_property_brent_window(self, n, p, fanout, seed):
        """Any greedy schedule satisfies max(T1/p, Tinf) <= Tp <= T1/p + Tinf."""
        import random

        rng = random.Random(seed)
        g = TaskGraph()
        ids = []
        for i in range(n):
            deps = rng.sample(ids, min(len(ids), rng.randint(0, fanout)))
            g.add(f"t{i}", rng.uniform(0.1, 3.0), deps)
            ids.append(f"t{i}")
        makespan = GreedyScheduler(p).run(g)
        t1, tinf = g.work, g.span
        assert makespan >= max(t1 / p, tinf) - 1e-9
        assert makespan <= t1 / p + tinf + 1e-9


class TestHelpers:
    def test_simulate_brent(self):
        assert simulate_brent(WorkSpan(100, 10), 10) == 20.0

    def test_speedup_curve_monotone(self):
        curve = speedup_curve(WorkSpan(1e6, 1e3), [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[1] <= curve[2] <= curve[4] <= curve[8]

    def test_speedup_capped_by_parallelism(self):
        ws = WorkSpan(1e6, 1e3)  # parallelism 1000
        curve = speedup_curve(ws, [10**6])
        assert curve[10**6] < 1001.0
