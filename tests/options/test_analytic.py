"""Tests for the closed-form oracles (Black–Scholes, perpetual put, bounds)."""

import dataclasses
import math

import pytest
from hypothesis import given

from repro.options.analytic import (
    black_scholes,
    european_price,
    intrinsic_bounds,
    no_early_exercise_call,
    no_early_exercise_put,
    perpetual_american_put,
)
from repro.options.contract import OptionSpec, Right
from repro.util.validation import ValidationError
from tests.conftest import call_specs


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.05, volatility=0.2, expiry_days=252.0
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestBlackScholes:
    def test_textbook_call_value(self):
        """Hull's classic example: S=42, K=40, r=10%, sigma=20%, T=0.5y."""
        s = OptionSpec(
            spot=42.0, strike=40.0, rate=0.10, volatility=0.2, expiry_days=126.0
        )
        assert european_price(s) == pytest.approx(4.759, abs=2e-3)

    def test_textbook_put_value(self):
        s = OptionSpec(
            spot=42.0,
            strike=40.0,
            rate=0.10,
            volatility=0.2,
            expiry_days=126.0,
            right=Right.PUT,
        )
        assert european_price(s) == pytest.approx(0.808, abs=2e-3)

    def test_put_call_parity(self):
        call = make()
        put = make(right=Right.PUT)
        t = call.years
        lhs = european_price(call) - european_price(put)
        rhs = call.spot * math.exp(-call.dividend_yield * t) - call.strike * math.exp(
            -call.rate * t
        )
        assert lhs == pytest.approx(rhs, abs=1e-12)

    @given(spec=call_specs())
    def test_property_put_call_parity(self, spec):
        call = spec
        put = spec.with_right(Right.PUT)
        t = spec.years
        lhs = european_price(call) - european_price(put)
        rhs = spec.spot * math.exp(-spec.dividend_yield * t) - spec.strike * math.exp(
            -spec.rate * t
        )
        assert lhs == pytest.approx(rhs, abs=1e-9 * spec.strike)

    def test_delta_bounds(self):
        r = black_scholes(make())
        assert 0.0 <= r.delta <= 1.0
        rp = black_scholes(make(right=Right.PUT))
        assert -1.0 <= rp.delta <= 0.0

    def test_gamma_vega_positive(self):
        r = black_scholes(make())
        assert r.gamma > 0
        assert r.vega > 0

    def test_delta_matches_finite_difference(self):
        base = make()
        h = 1e-4 * base.spot
        up = european_price(make(spot=base.spot + h))
        dn = european_price(make(spot=base.spot - h))
        assert black_scholes(base).delta == pytest.approx((up - dn) / (2 * h), abs=1e-5)

    def test_vega_matches_finite_difference(self):
        base = make()
        h = 1e-5
        up = european_price(make(volatility=0.2 + h))
        dn = european_price(make(volatility=0.2 - h))
        assert black_scholes(base).vega == pytest.approx((up - dn) / (2 * h), rel=1e-4)

    def test_gamma_matches_finite_difference(self):
        base = make()
        h = 1e-3 * base.spot
        up = european_price(make(spot=base.spot + h))
        mid = european_price(base)
        dn = european_price(make(spot=base.spot - h))
        assert black_scholes(base).gamma == pytest.approx(
            (up - 2 * mid + dn) / (h * h), rel=1e-4
        )

    def test_rho_matches_finite_difference(self):
        base = make()
        h = 1e-6
        up = european_price(make(rate=base.rate + h))
        dn = european_price(make(rate=base.rate - h))
        assert black_scholes(base).rho == pytest.approx(
            (up - dn) / (2 * h), rel=1e-6
        )

    def test_put_rho_matches_finite_difference(self):
        base = make(right=Right.PUT)
        h = 1e-6
        up = european_price(make(right=Right.PUT, rate=base.rate + h))
        dn = european_price(make(right=Right.PUT, rate=base.rate - h))
        assert black_scholes(base).rho == pytest.approx(
            (up - dn) / (2 * h), rel=1e-6
        )
        assert black_scholes(base).rho < 0.0  # puts lose value as rates rise

    def test_theta_matches_finite_difference(self):
        base = make()
        h_days = 1e-2
        # theta is reported per *year*: d(price)/dt with t in years
        up = european_price(make(expiry_days=base.expiry_days - h_days))
        dn = european_price(make(expiry_days=base.expiry_days + h_days))
        per_year = (up - dn) / (2 * h_days / base.day_count)
        assert black_scholes(base).theta == pytest.approx(per_year, rel=1e-6)

    @given(spec=call_specs())
    def test_property_vega_rho_match_finite_difference(self, spec):
        """The Newton-seed Greeks must agree with bump-and-reprice on both
        rights across the whole tree-model parameter domain."""
        h = 1e-6
        for s in (spec, spec.with_right(Right.PUT)):
            r = black_scholes(s)
            fd_vega = (
                european_price(
                    dataclasses.replace(s, volatility=s.volatility + h)
                )
                - european_price(
                    dataclasses.replace(s, volatility=s.volatility - h)
                )
            ) / (2 * h)
            assert r.vega == pytest.approx(fd_vega, rel=1e-4, abs=1e-6)
            rate_dn = max(s.rate - h, 0.0)  # rates validate non-negative
            fd_rho = (
                european_price(dataclasses.replace(s, rate=s.rate + h))
                - european_price(dataclasses.replace(s, rate=rate_dn))
            ) / (s.rate + h - rate_dn)
            assert r.rho == pytest.approx(fd_rho, rel=1e-4, abs=1e-6)

    def test_dividend_lowers_call(self):
        assert european_price(make(dividend_yield=0.05)) < european_price(make())


class TestPerpetualPut:
    def test_above_boundary_formula(self):
        s = make(right=Right.PUT, rate=0.02)
        v = perpetual_american_put(s)
        gamma = 2 * 0.02 / 0.04
        l_star = 100.0 * gamma / (gamma + 1)
        assert v == pytest.approx((100.0 - l_star) * (100.0 / l_star) ** (-gamma))

    def test_below_boundary_intrinsic(self):
        s = make(spot=10.0, right=Right.PUT, rate=0.05)
        assert perpetual_american_put(s) == pytest.approx(90.0)

    def test_dominates_intrinsic(self):
        s = make(right=Right.PUT)
        assert perpetual_american_put(s) >= s.intrinsic()

    def test_requires_put(self):
        with pytest.raises(ValidationError):
            perpetual_american_put(make())

    def test_requires_zero_dividend(self):
        with pytest.raises(ValidationError):
            perpetual_american_put(make(right=Right.PUT, dividend_yield=0.01))


class TestBoundsAndFacts:
    def test_no_early_exercise_flag(self):
        assert no_early_exercise_call(make(dividend_yield=0.0))
        assert not no_early_exercise_call(make(dividend_yield=0.01))
        assert not no_early_exercise_call(make(right=Right.PUT))

    def test_no_early_exercise_put_flag(self):
        assert no_early_exercise_put(make(right=Right.PUT, rate=0.0))
        assert not no_early_exercise_put(make(right=Right.PUT))
        assert not no_early_exercise_put(make(rate=0.0))  # call

    def test_call_bounds_contain_european(self):
        s = make()
        lo, hi = intrinsic_bounds(s)
        v = european_price(s)
        assert lo <= v <= hi

    def test_put_bounds_contain_european(self):
        s = make(right=Right.PUT)
        lo, hi = intrinsic_bounds(s)
        assert lo <= european_price(s) <= hi

    @given(spec=call_specs())
    def test_property_bounds_ordering(self, spec):
        lo, hi = intrinsic_bounds(spec)
        assert 0.0 <= lo <= hi
