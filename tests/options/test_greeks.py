"""Tests for bump-and-reprice American Greeks."""

import dataclasses

import pytest

import repro.core.api
from repro.options.analytic import black_scholes
from repro.options.contract import OptionSpec, Right
from repro.options.greeks import LADDER_SIZE, american_greeks
from repro.util.validation import ValidationError


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.05, volatility=0.25, dividend_yield=0.0
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestAgainstClosedForm:
    """Zero-dividend American call == European call, so its Greeks must
    match Black–Scholes to discretisation accuracy."""

    @pytest.fixture(scope="class")
    def pair(self):
        spec = make()
        return american_greeks(spec, 2048), black_scholes(spec)

    def test_price(self, pair):
        g, bs = pair
        assert g.price == pytest.approx(bs.price, abs=0.02)

    def test_delta(self, pair):
        g, bs = pair
        assert g.delta == pytest.approx(bs.delta, abs=0.01)

    def test_gamma(self, pair):
        g, bs = pair
        assert g.gamma == pytest.approx(bs.gamma, rel=0.25)

    def test_vega(self, pair):
        g, bs = pair
        assert g.vega == pytest.approx(bs.vega, rel=0.05)

    def test_rho(self, pair):
        g, bs = pair
        assert g.rho == pytest.approx(bs.rho, rel=0.05)

    def test_theta_sign(self, pair):
        g, bs = pair
        assert g.theta < 0  # long options decay


class TestAmericanStructure:
    def test_put_delta_negative(self):
        g = american_greeks(make(right=Right.PUT), 512)
        assert -1.0 <= g.delta <= 0.0

    def test_call_delta_in_unit_interval(self):
        g = american_greeks(make(dividend_yield=0.03), 512)
        assert 0.0 <= g.delta <= 1.0

    def test_gamma_positive(self):
        g = american_greeks(make(dividend_yield=0.03), 512)
        assert g.gamma > 0.0

    def test_vega_positive(self):
        g = american_greeks(make(right=Right.PUT), 512)
        assert g.vega > 0.0

    def test_american_put_rho_negative(self):
        g = american_greeks(make(right=Right.PUT), 512)
        assert g.rho < 0.0

    def test_methods_agree(self):
        spec = make(dividend_yield=0.02)
        fft = american_greeks(spec, 256, method="fft")
        loop = american_greeks(spec, 256, method="loop")
        assert fft.delta == pytest.approx(loop.delta, abs=1e-9)
        assert fft.vega == pytest.approx(loop.vega, abs=1e-6)

    def test_deep_itm_put_delta_near_minus_one(self):
        g = american_greeks(make(spot=50.0, right=Right.PUT), 256)
        assert g.delta == pytest.approx(-1.0, abs=0.02)


class TestThetaBumpClamp:
    """The half-day theta floor must not push sub-half-day expiries <= 0."""

    def test_sub_half_day_expiry_prices(self):
        g = american_greeks(make(expiry_days=0.4), 64)
        assert g.price > 0.0
        assert g.theta < 0.0  # still decays

    def test_exactly_half_day_expiry(self):
        g = american_greeks(make(expiry_days=0.5), 64)
        assert g.price > 0.0

    def test_normal_expiry_unaffected(self):
        # one-year contract: the clamp must leave the standard ladder alone
        from repro.options.greeks import _bump_ladder

        ladder = _bump_ladder(make(expiry_days=252.0), 1e-3, 2e-2)
        assert ladder.h_days == pytest.approx(0.5)  # floor applies, no clamp
        assert ladder.specs[-1].expiry_days == pytest.approx(251.5)

    def test_tiny_expiry_uses_half_of_expiry_step(self):
        from repro.options.greeks import _bump_ladder

        ladder = _bump_ladder(make(expiry_days=0.4), 1e-3, 2e-2)
        assert ladder.h_days == pytest.approx(0.2)
        assert ladder.specs[-1].expiry_days == pytest.approx(0.2)


class TestRepriceCount:
    def test_ladder_is_nine_reprices_plus_base(self, monkeypatch):
        """The docs promise 9 reprices + 1 base: count actual solver calls."""
        calls = []
        real = repro.core.api.price_american

        def counting(spec, steps, **kw):
            calls.append(spec)
            return real(spec, steps, **kw)

        # greeks run through price_many, which resolves price_american at
        # call time from its module globals — patch it there.
        monkeypatch.setattr(repro.core.api, "price_american", counting)
        american_greeks(make(), 64)
        assert len(calls) == LADDER_SIZE == 10
        # exactly one unbumped base solve in the ladder
        assert sum(1 for s in calls if s == make()) == 1


class TestValidation:
    def test_huge_bump_rejected(self):
        with pytest.raises(ValidationError):
            american_greeks(make(), 64, rel_bump=0.5)

    def test_zero_bump_rejected(self):
        with pytest.raises(ValidationError):
            american_greeks(make(), 64, rel_bump=0.0)
