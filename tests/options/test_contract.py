"""Unit tests for the OptionSpec contract object."""

import math

import pytest

from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.util.validation import ValidationError


def make(**kw):
    defaults = dict(spot=100.0, strike=100.0, rate=0.02, volatility=0.2)
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestValidation:
    def test_defaults_valid(self):
        s = make()
        assert s.right is Right.CALL
        assert s.style is Style.AMERICAN

    @pytest.mark.parametrize("field", ["spot", "strike", "volatility", "expiry_days"])
    def test_positive_fields(self, field):
        with pytest.raises(ValidationError, match=field):
            make(**{field: 0.0})

    @pytest.mark.parametrize("field", ["rate", "dividend_yield"])
    def test_nonnegative_fields(self, field):
        with pytest.raises(ValidationError, match=field):
            make(**{field: -0.01})
        assert getattr(make(**{field: 0.0}), field) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            make(spot=math.nan)

    def test_right_type_checked(self):
        with pytest.raises(ValidationError):
            make(right="call")

    def test_style_type_checked(self):
        with pytest.raises(ValidationError):
            make(style="american")

    def test_day_count_positive(self):
        with pytest.raises(ValidationError):
            OptionSpec(
                spot=1, strike=1, rate=0, volatility=0.2, day_count=0
            )

    def test_frozen(self):
        with pytest.raises(Exception):
            make().spot = 50.0


class TestDerived:
    def test_years(self):
        assert make(expiry_days=126.0).years == pytest.approx(0.5)

    def test_moneyness(self):
        assert make(spot=110.0, strike=100.0).moneyness == pytest.approx(1.1)

    def test_log_moneyness(self):
        s = make(spot=110.0, strike=100.0)
        assert s.log_moneyness == pytest.approx(math.log(1.1))

    def test_intrinsic_call(self):
        assert make(spot=110.0).intrinsic() == pytest.approx(10.0)
        assert make(spot=90.0).intrinsic() == 0.0

    def test_intrinsic_put(self):
        s = make(spot=90.0, right=Right.PUT)
        assert s.intrinsic() == pytest.approx(10.0)
        assert s.intrinsic(price=120.0) == 0.0


class TestTransforms:
    def test_with_right(self):
        s = make().with_right(Right.PUT)
        assert s.right is Right.PUT
        assert s.spot == 100.0

    def test_with_style(self):
        s = make().with_style(Style.EUROPEAN)
        assert s.style is Style.EUROPEAN

    def test_symmetric_dual_swaps(self):
        s = make(spot=90.0, strike=110.0, rate=0.03, dividend_yield=0.01)
        d = s.symmetric_dual()
        assert d.spot == 110.0
        assert d.strike == 90.0
        assert d.rate == 0.01
        assert d.dividend_yield == 0.03
        assert d.right is Right.PUT  # call flipped to put

    def test_symmetric_dual_involution(self):
        s = make(spot=90.0, strike=110.0, rate=0.03, dividend_yield=0.01)
        assert s.symmetric_dual().symmetric_dual() == s


class TestPaperSpec:
    def test_paper_values(self):
        s = paper_benchmark_spec()
        assert s.spot == 127.62
        assert s.strike == 130.0
        assert s.rate == 0.00163
        assert s.volatility == 0.2
        assert s.dividend_yield == 0.0163
        assert s.expiry_days == 252.0
        assert s.years == pytest.approx(1.0)

    def test_paper_put_variant(self):
        s = paper_benchmark_spec(Right.PUT)
        assert s.right is Right.PUT
