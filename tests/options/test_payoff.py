"""Tests for the vectorised payoff helpers."""

import numpy as np

from repro.options.contract import OptionSpec, Right
from repro.options.payoff import signed_exercise, terminal_payoff


def make(right=Right.CALL):
    return OptionSpec(spot=100.0, strike=100.0, rate=0.02, volatility=0.2, right=right)


def test_terminal_payoff_call_floor():
    out = terminal_payoff(make(), np.array([80.0, 100.0, 130.0]))
    np.testing.assert_allclose(out, [0.0, 0.0, 30.0])


def test_terminal_payoff_put_floor():
    out = terminal_payoff(make(Right.PUT), np.array([80.0, 100.0, 130.0]))
    np.testing.assert_allclose(out, [20.0, 0.0, 0.0])


def test_signed_exercise_call_unfloored():
    out = signed_exercise(make(), np.array([80.0, 130.0]))
    np.testing.assert_allclose(out, [-20.0, 30.0])


def test_signed_exercise_put_unfloored():
    out = signed_exercise(make(Right.PUT), np.array([80.0, 130.0]))
    np.testing.assert_allclose(out, [20.0, -30.0])


def test_relationship_terminal_is_floored_signed():
    prices = np.linspace(50, 150, 11)
    for right in (Right.CALL, Right.PUT):
        s = make(right)
        np.testing.assert_allclose(
            terminal_payoff(s, prices), np.maximum(signed_exercise(s, prices), 0.0)
        )
