"""Unit tests for the lattice/FD parameterisations (paper §2.1, §3, §4.2)."""

import math

import numpy as np
import pytest
from hypothesis import given

from repro.options.contract import OptionSpec, Right
from repro.options.params import BinomialParams, BSMGridParams, TrinomialParams
from repro.util.validation import ValidationError
from tests.conftest import call_specs


def make_spec(**kw):
    defaults = dict(spot=100.0, strike=100.0, rate=0.02, volatility=0.2)
    defaults.update(kw)
    return OptionSpec(**defaults)


class TestBinomialParams:
    def test_ud_identity(self):
        p = BinomialParams.from_spec(make_spec(), 100)
        assert p.up * p.down == pytest.approx(1.0)

    def test_crr_up_factor(self):
        s = make_spec()
        p = BinomialParams.from_spec(s, 252)
        assert p.up == pytest.approx(math.exp(0.2 * math.sqrt(s.years / 252)))

    def test_probability_in_unit_interval(self):
        p = BinomialParams.from_spec(make_spec(dividend_yield=0.05), 50)
        assert 0.0 < p.prob_up < 1.0

    def test_martingale_property(self):
        """E[S_{t+1}] = S_t e^{(R-Y) dt} under the risk-neutral measure."""
        s = make_spec(dividend_yield=0.01)
        p = BinomialParams.from_spec(s, 40)
        expected = p.prob_up * p.up + (1 - p.prob_up) * p.down
        assert expected == pytest.approx(
            math.exp((s.rate - s.dividend_yield) * p.dt), rel=1e-12
        )

    def test_weights_sum_to_discount(self):
        p = BinomialParams.from_spec(make_spec(), 10)
        assert p.s0 + p.s1 == pytest.approx(p.discount)

    def test_degenerate_probability_raises(self):
        # huge negative drift vs tiny volatility pushes p out of (0,1)
        with pytest.raises(ValidationError, match="probability"):
            BinomialParams.from_spec(
                make_spec(volatility=0.01, dividend_yield=2.0), 1
            )

    def test_asset_price_identity(self):
        s = make_spec()
        p = BinomialParams.from_spec(s, 16)
        # root price is S; top-right leaf is S*u^T
        assert float(p.asset_price(0, 0)) == pytest.approx(s.spot)
        assert float(p.asset_price(16, 16)) == pytest.approx(s.spot * p.up**16)

    def test_exercise_value_signed(self):
        s = make_spec(strike=150.0)
        p = BinomialParams.from_spec(s, 8)
        assert float(p.exercise_value(0, 0)) == pytest.approx(100.0 - 150.0)

    def test_steps_validation(self):
        with pytest.raises(ValidationError):
            BinomialParams.from_spec(make_spec(), 0)

    def test_taps_tuple(self):
        p = BinomialParams.from_spec(make_spec(), 4)
        assert p.taps == (p.s0, p.s1)

    @given(spec=call_specs())
    def test_property_valid_parameterisation(self, spec):
        p = BinomialParams.from_spec(spec, 64)
        assert 0.0 < p.prob_up < 1.0
        assert 0.0 < p.discount <= 1.0
        assert p.up > 1.0 > p.down > 0.0


class TestTrinomialParams:
    def test_probabilities_sum_to_one(self):
        p = TrinomialParams.from_spec(make_spec(), 50)
        assert p.prob_up + p.prob_mid + p.prob_down == pytest.approx(1.0)

    def test_up_factor_sqrt2(self):
        s = make_spec()
        p = TrinomialParams.from_spec(s, 252)
        dt = s.years / 252
        assert p.up == pytest.approx(math.exp(0.2 * math.sqrt(2 * dt)))

    def test_martingale_property(self):
        s = make_spec(dividend_yield=0.02)
        p = TrinomialParams.from_spec(s, 40)
        expected = p.prob_up * p.up + p.prob_mid + p.prob_down * p.down
        assert expected == pytest.approx(
            math.exp((s.rate - s.dividend_yield) * p.dt), rel=1e-10
        )

    def test_weights_sum_to_discount(self):
        p = TrinomialParams.from_spec(make_spec(), 10)
        assert p.s0 + p.s1 + p.s2 == pytest.approx(p.discount)

    def test_asset_price_grid_convention(self):
        s = make_spec()
        p = TrinomialParams.from_spec(s, 8)
        # column j = i is the flat (spot) node at every row
        for i in (0, 3, 8):
            assert float(p.asset_price(i, i)) == pytest.approx(s.spot)

    def test_taps_tuple(self):
        p = TrinomialParams.from_spec(make_spec(), 4)
        assert p.taps == (p.s0, p.s1, p.s2)


class TestBSMGridParams:
    def put_spec(self, **kw):
        return make_spec(right=Right.PUT, **kw)

    def test_requires_put(self):
        with pytest.raises(ValidationError, match="put"):
            BSMGridParams.from_spec(make_spec(), 16)

    def test_requires_zero_dividend(self):
        with pytest.raises(ValidationError, match="dividend"):
            BSMGridParams.from_spec(self.put_spec(dividend_yield=0.02), 16)

    def test_requires_positive_rate(self):
        with pytest.raises(ValidationError, match="rate"):
            BSMGridParams.from_spec(self.put_spec(rate=0.0), 16)

    def test_omega(self):
        p = BSMGridParams.from_spec(self.put_spec(), 16)
        assert p.omega == pytest.approx(2 * 0.02 / 0.04)

    def test_parabolic_ratio(self):
        p = BSMGridParams.from_spec(self.put_spec(), 64, lam=0.3)
        assert p.dtau / p.ds**2 == pytest.approx(0.3)

    def test_lam_bounds(self):
        with pytest.raises(ValidationError):
            BSMGridParams.from_spec(self.put_spec(), 16, lam=0.6)
        with pytest.raises(ValidationError):
            BSMGridParams.from_spec(self.put_spec(), 16, lam=0.0)

    def test_coefficients_nonnegative_and_substochastic(self):
        p = BSMGridParams.from_spec(self.put_spec(), 64)
        assert p.coef_down >= 0 and p.coef_mid >= 0 and p.coef_up >= 0
        assert p.coef_down + p.coef_mid + p.coef_up <= 1.0

    def test_payoff_at_origin(self):
        s = self.put_spec(spot=90.0, strike=100.0)
        p = BSMGridParams.from_spec(s, 16)
        # k=0 is s = ln(S/K): payoff = 1 - S/K
        assert float(p.payoff(0)) == pytest.approx(1.0 - 0.9)

    def test_s_values_spacing(self):
        p = BSMGridParams.from_spec(self.put_spec(), 16)
        sv = p.s_values(np.array([0, 1, 2]))
        assert sv[1] - sv[0] == pytest.approx(p.ds)

    def test_monotonicity_condition_violation_detected(self):
        # gigantic omega (rate >> vol^2) makes coef_mid negative at tiny T
        with pytest.raises(ValidationError, match="coefficient"):
            BSMGridParams.from_spec(
                self.put_spec(rate=0.5, volatility=0.1), 1
            )
