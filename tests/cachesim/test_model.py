"""Tests for the analytic cache-miss models (shape + simulator cross-check)."""

import pytest

from repro.cachesim.cache import CacheConfig, CacheHierarchy
from repro.cachesim.model import (
    CacheLevelSpec,
    MODELED_IMPLS,
    analytic_misses,
    dram_bytes,
)
from repro.cachesim import trace as tr
from repro.util.validation import ValidationError

L1 = CacheLevelSpec(capacity_bytes=32 * 1024)


class TestShapes:
    @pytest.mark.parametrize("impl", sorted(MODELED_IMPLS))
    def test_monotone_in_T(self, impl):
        a = analytic_misses(impl, 1 << 10, L1)
        b = analytic_misses(impl, 1 << 13, L1)
        assert b > a > 0

    def test_streaming_quadratic_beyond_capacity(self):
        big, bigger = 1 << 14, 1 << 16
        ratio = analytic_misses("loop", bigger, L1) / analytic_misses("loop", big, L1)
        assert 8.0 < ratio < 20.0  # ~16x

    def test_fft_subquadratic(self):
        big, bigger = 1 << 14, 1 << 16
        ratio = analytic_misses("fft-bopm", bigger, L1) / analytic_misses(
            "fft-bopm", big, L1
        )
        assert ratio < 8.0

    def test_fft_beats_loop_at_scale(self):
        T = 1 << 16
        assert analytic_misses("fft-bopm", T, L1) < analytic_misses("loop", T, L1)

    def test_zb_below_ql(self):
        T = 1 << 14
        assert analytic_misses("zb", T, L1) < analytic_misses("ql", T, L1)

    def test_tiled_below_loop_beyond_capacity(self):
        T = 1 << 15
        assert analytic_misses("tiled", T, L1) < analytic_misses("loop", T, L1)

    def test_small_T_resident_compulsory_only(self):
        T = 256  # 2 streams * 257 * 8B = 4KB << 32KB
        assert analytic_misses("loop", T, L1) < 3 * (T + 1)

    def test_unknown_impl(self):
        with pytest.raises(ValidationError):
            analytic_misses("quantum", 100, L1)

    def test_dram_bytes_scales_with_line(self):
        assert dram_bytes("loop", 1 << 12) > 0


class TestModelVsSimulator:
    """The analytic model must land within a constant band of the simulator
    in the regime both can reach (streaming beyond a tiny cache)."""

    @pytest.mark.parametrize("impl,gen", [
        ("loop", tr.trace_loop_bopm),
        ("zb", tr.trace_zb_bopm),
        ("ql", tr.trace_ql_bopm),
    ])
    def test_streaming_band(self, impl, gen):
        T = 512
        cap = 2 * 1024  # tiny cache so T=512 rows (4KB) stream
        hier = CacheHierarchy(
            CacheConfig(size_bytes=cap, line_bytes=64, ways=8),
            CacheConfig(size_bytes=4 * cap, line_bytes=64, ways=8),
        )
        for chunk in gen(T):
            hier.access_elements(chunk)
        simulated = hier.counters().l1_misses
        modeled = analytic_misses(impl, T, CacheLevelSpec(capacity_bytes=cap))
        assert modeled == pytest.approx(simulated, rel=0.6), (modeled, simulated)
