"""Tests for the per-algorithm memory-trace generators."""

import numpy as np
import pytest

from repro.cachesim import trace as tr
from repro.lattice.binomial import price_binomial
from repro.lattice.blackscholes_fd import price_bsm_fd
from repro.lattice.trinomial import price_trinomial
from repro.options.contract import Right, paper_benchmark_spec
import dataclasses

SPEC = paper_benchmark_spec()
PUT = dataclasses.replace(SPEC, right=Right.PUT, dividend_yield=0.0)


def total_accesses(gen):
    return sum(len(chunk) for chunk in gen)


class TestStencilRowHelper:
    def test_interleaving(self):
        out = tr._stencil_row(100, 200, 5, 2, 2)
        np.testing.assert_array_equal(out, [105, 106, 205, 106, 107, 206])

    def test_three_taps(self):
        out = tr._stencil_row(0, 50, 0, 1, 3)
        np.testing.assert_array_equal(out, [0, 1, 2, 50])


class TestBaselineTraces:
    def test_loop_access_count(self):
        T = 32
        n = total_accesses(tr.trace_loop_bopm(T))
        # terminal fill + 3 accesses per interior cell
        cells = sum(i + 1 for i in range(T))
        assert n == (T + 1) + 3 * cells

    def test_ql_has_more_accesses_than_loop(self):
        T = 32
        assert total_accesses(tr.trace_ql_bopm(T)) > total_accesses(
            tr.trace_loop_bopm(T)
        )

    def test_zb_access_count(self):
        T = 16
        n = total_accesses(tr.trace_zb_bopm(T))
        cells = sum(i + 1 for i in range(T))
        assert n == 2 * (T + 1) + 3 * cells

    def test_tiled_covers_all_cells(self):
        # tiled touches at least as many cells as the plain loop (halo overlap)
        T = 64
        plain = total_accesses(tr.trace_loop_bopm(T))
        tiled = total_accesses(tr.trace_tiled_bopm(T, block_rows=8, tile_width=8))
        assert tiled >= plain * 0.8

    def test_oblivious_touches_every_cell_once(self):
        T = 40
        n = total_accesses(tr.trace_oblivious_bopm(T))
        cells = sum(i + 1 for i in range(T))
        assert n == (T + 1) + 3 * cells

    def test_trinomial_width(self):
        T = 16
        n = total_accesses(tr.trace_loop_trinomial(T))
        cells = sum(2 * i + 1 for i in range(T))
        assert n == (2 * T + 1) + 4 * cells

    def test_bsm_trace_has_payoff_stream(self):
        T = 16
        n = total_accesses(tr.trace_loop_bsm(T))
        cells = sum(2 * (T - k) + 1 for k in range(1, T + 1))
        assert n == (2 * T + 1) + 5 * cells  # 4 stencil + 1 payoff per cell


class TestFFTTraces:
    def test_tree_replay_runs_and_is_subquadratic(self):
        T = 256
        boundary = price_binomial(SPEC, T, return_boundary=True).boundary
        n = total_accesses(tr.trace_fft_tree(T, boundary, q=1))
        loop_n = total_accesses(tr.trace_loop_bopm(T))
        assert 0 < n < loop_n

    def test_trinomial_replay(self):
        T = 128
        boundary = price_trinomial(SPEC, T, return_boundary=True).boundary
        assert total_accesses(tr.trace_fft_tree(T, boundary, q=2)) > 0

    def test_bsm_replay_subquadratic(self):
        T = 256
        boundary = price_bsm_fd(PUT, T, return_boundary=True).boundary
        n = total_accesses(tr.trace_fft_bsm(T, boundary))
        loop_n = total_accesses(tr.trace_loop_bsm(T))
        assert 0 < n < loop_n

    def test_regions_disjoint(self):
        """Different logical arrays must never share a cache line."""
        T = 64
        boundary = price_binomial(SPEC, T, return_boundary=True).boundary
        for chunk in tr.trace_fft_tree(T, boundary, q=1):
            regions = np.unique(chunk // tr.REGION)
            for r in regions:
                assert 0 <= r < 8

    def test_fft_passes_grow_with_size(self):
        assert tr._fft_passes(10**6) > tr._fft_passes(100)
