"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cachesim.cache import (
    CacheConfig,
    CacheHierarchy,
    LRUCache,
    SKYLAKE_L1,
    SKYLAKE_L2,
)
from repro.util.validation import ValidationError


def tiny(ways=2, sets=2, line=64):
    return CacheConfig(size_bytes=ways * sets * line, line_bytes=line, ways=ways)


class TestConfig:
    def test_skylake_geometry(self):
        assert SKYLAKE_L1.num_sets == 64
        assert SKYLAKE_L1.num_lines == 512
        assert SKYLAKE_L2.num_sets == 1024

    def test_indivisible_rejected(self):
        with pytest.raises(ValidationError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)


class TestLRU:
    def test_cold_miss_then_hit(self):
        c = LRUCache(tiny())
        assert not c.access_line(0)
        assert c.access_line(0)
        assert (c.hits, c.misses) == (1, 1)

    def test_capacity_eviction_lru_order(self):
        c = LRUCache(tiny(ways=2, sets=1))
        c.access_line(0)
        c.access_line(1)
        c.access_line(2)  # evicts 0 (LRU)
        assert not c.access_line(0)  # 0 was evicted
        assert c.access_line(2)  # 2 still resident

    def test_recency_update(self):
        c = LRUCache(tiny(ways=2, sets=1))
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)  # refresh 0
        c.access_line(2)  # evicts 1, not 0
        assert c.access_line(0)
        assert not c.access_line(1)

    def test_set_isolation(self):
        c = LRUCache(tiny(ways=1, sets=2))
        c.access_line(0)  # set 0
        c.access_line(1)  # set 1
        assert c.access_line(0)  # untouched by line 1
        assert c.access_line(1)

    def test_reset(self):
        c = LRUCache(tiny())
        c.access_line(0)
        c.reset()
        assert c.accesses == 0
        assert not c.access_line(0)

    def test_access_lines_batch(self):
        c = LRUCache(tiny(ways=4, sets=4))
        added = c.access_lines([0, 1, 0, 1, 2])
        assert added == 3
        assert c.hits == 2

    def test_sequential_stream_compulsory_only_when_fits(self):
        c = LRUCache(tiny(ways=8, sets=8))  # 64 lines
        for _ in range(3):
            c.access_lines(range(32))
        assert c.misses == 32  # first pass only

    def test_streaming_larger_than_cache_always_misses(self):
        c = LRUCache(tiny(ways=2, sets=2))  # 4 lines
        for _ in range(3):
            c.access_lines(range(16))
        assert c.misses == 48  # every access misses

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    def test_property_miss_bounds(self, lines):
        c = LRUCache(tiny(ways=2, sets=4))
        c.access_lines(lines)
        distinct = len(set(lines))
        assert distinct <= c.misses <= len(lines)
        assert c.hits + c.misses == len(lines)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=120))
    def test_property_bigger_cache_never_worse(self, lines):
        """LRU is a stack algorithm: more ways, same sets => fewer misses."""
        small = LRUCache(CacheConfig(size_bytes=2 * 4 * 64, line_bytes=64, ways=2))
        big = LRUCache(CacheConfig(size_bytes=8 * 4 * 64, line_bytes=64, ways=8))
        small.access_lines(lines)
        big.access_lines(lines)
        assert big.misses <= small.misses


class TestHierarchy:
    def test_l1_miss_goes_to_l2(self):
        h = CacheHierarchy(tiny(ways=1, sets=1), tiny(ways=4, sets=4))
        h.access_lines_array(np.array([0, 1, 0]))
        c = h.counters()
        assert c.accesses == 3
        assert c.l1_misses == 3  # 1-line L1 thrashes
        assert c.l2_misses == 2  # L2 keeps both

    def test_element_to_line_conversion(self):
        h = CacheHierarchy(tiny(), tiny(ways=4), element_bytes=8)
        h.access_elements(np.arange(8))  # 8 doubles = one 64B line
        assert h.counters().l1_misses == 1

    def test_mismatched_line_size_rejected(self):
        with pytest.raises(ValidationError):
            CacheHierarchy(tiny(line=64), tiny(line=32))

    def test_dram_lines_alias(self):
        h = CacheHierarchy(tiny(ways=1, sets=1), tiny(ways=1, sets=1))
        h.access_lines_array(np.array([0, 1, 2]))
        assert h.counters().dram_lines == h.counters().l2_misses

    def test_reset(self):
        h = CacheHierarchy(tiny(), tiny(ways=4))
        h.access_elements(np.arange(100))
        h.reset()
        assert h.counters().accesses == 0
