"""Every example must run end-to-end (small arguments, captured output)."""

import runpy
import sys

import pytest


def run_example(path: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(path, run_name="__main__")
        assert exc.value.code in (0, None)
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("examples/quickstart.py", ["--steps", "128"], capsys)
    assert "fft price" in out
    assert "Black–Scholes closed form" in out


def test_exercise_boundary(capsys):
    out = run_example("examples/exercise_boundary.py", ["--steps", "128"], capsys)
    assert "binomial" in out
    assert "bsm-fd" in out
    assert "boundary price" in out


def test_convergence(capsys):
    out = run_example("examples/convergence.py", ["--max-exp", "9"], capsys)
    assert "Richardson" in out


def test_speedup_demo(capsys):
    out = run_example(
        "examples/speedup_demo.py", ["--min-exp", "8", "--max-exp", "9"], capsys
    )
    assert "speedup vs zb" in out


def test_portfolio(capsys):
    out = run_example("examples/portfolio.py", ["--steps", "64"], capsys)
    assert "early-ex premium" in out
    assert "ms/contract" in out


def test_scenario_sweep(capsys):
    out = run_example(
        "examples/scenario_sweep.py",
        ["--steps", "64", "--workers", "2", "--backend", "serial"],
        capsys,
    )
    assert "price surface" in out
    assert "Brent-predicted speedup" in out
    assert "Greek ladders" in out


def test_quote_server(capsys):
    out = run_example(
        "examples/quote_server.py",
        ["--steps", "64", "--requests", "60", "--book", "8"],
        capsys,
    )
    assert "hit ratio" in out
    assert "coalesced batch" in out
    assert "in-flight dedup" in out
    assert "quotes per solve" in out


def test_implied_surface(capsys):
    out = run_example(
        "examples/implied_surface.py",
        ["--steps", "64", "--strikes", "4", "--backend", "serial"],
        capsys,
    )
    assert "calibrated implied vol surface" in out
    assert "solves/quote" in out
    assert "no-arbitrage diagnostics" in out
    assert "scenario sweep off the surface" in out


def test_tiered_quotes(capsys):
    out = run_example("examples/tiered_quotes.py", ["--steps", "64"], capsys)
    assert "tier=fast" in out
    assert "tier=exact" in out
    assert "degraded_to=spectral" in out
    assert "mixed grid, per-cell backends" in out
    assert "spectral" in out and "lattice" in out


def test_paper_tables_list(capsys):
    out = run_example("examples/paper_tables.py", ["--list"], capsys)
    assert "fig5-bopm" in out
    assert "table5" in out


def test_paper_tables_run_one(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    out = run_example("examples/paper_tables.py", ["agreement"], capsys)
    assert "fft vs vanilla" in out
