"""Tests for scaling-law fitting helpers."""

import math

import pytest

from repro.experiments.calibration import fit_power_law, fit_t_logsq, relative_spread
from repro.util.validation import ValidationError


def test_exact_power_law_recovered():
    xs = [2**k for k in range(4, 12)]
    ys = [3.5 * x**2 for x in xs]
    a, c = fit_power_law(xs, ys)
    assert a == pytest.approx(2.0, abs=1e-9)
    assert c == pytest.approx(3.5, rel=1e-9)

    a, c = fit_power_law(xs, [7.0 * x for x in xs])
    assert a == pytest.approx(1.0, abs=1e-9)


def test_tlogsq_exponent_between_1_and_2():
    xs = [2**k for k in range(6, 16)]
    ys = [x * math.log2(x) ** 2 for x in xs]
    a, _ = fit_power_law(xs, ys)
    assert 1.1 < a < 1.6


def test_fit_t_logsq_recovers_constant():
    xs = [2**k for k in range(6, 14)]
    c = fit_t_logsq(xs, [2.5 * x * math.log2(x) ** 2 for x in xs])
    assert c == pytest.approx(2.5, rel=1e-9)


def test_power_law_needs_two_points():
    with pytest.raises(ValidationError):
        fit_power_law([1], [1])


def test_power_law_rejects_nonpositive():
    with pytest.raises(ValidationError):
        fit_power_law([1, 2], [0.0, 1.0])


def test_relative_spread_flat():
    assert relative_spread({1: 2.0, 2: 2.0}) == pytest.approx(1.0)


def test_relative_spread_errors_on_empty():
    with pytest.raises(ValidationError):
        relative_spread({})


def test_spread_of_normalised_tlogsq_is_tight():
    xs = [2**k for k in range(8, 16)]
    series = {x: (x * math.log2(x) ** 2) / (x * math.log2(x) ** 2) for x in xs}
    assert relative_spread(series) == pytest.approx(1.0)
