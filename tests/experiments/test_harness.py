"""Tests for the experiment registry, runner and builders (fast mode)."""

import os

import pytest

import repro.experiments  # populates the registry  # noqa: F401
from repro.experiments.harness import (
    REGISTRY,
    ExperimentResult,
    list_experiments,
    register,
    run_experiment,
)
from repro.util.validation import ValidationError


@pytest.fixture(autouse=True)
def fast_mode(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_FAST", "1")
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    yield


EXPECTED_IDS = {
    "fig5-bopm",
    "fig5-topm",
    "fig5-bsm",
    "fig6-bopm",
    "fig6-topm",
    "fig6-bsm",
    "fig10-bopm",
    "fig10-bopm-ram",
    "fig7-bopm",
    "fig7-topm",
    "fig7-bsm",
    "table2",
    "table5",
    "prop1.1",
    "agreement",
    "ablation-base",
}


def test_every_paper_artifact_registered():
    assert EXPECTED_IDS <= set(REGISTRY)


def test_list_experiments_rows():
    rows = list_experiments()
    assert all(len(r) == 3 for r in rows)


def test_unknown_experiment():
    with pytest.raises(ValidationError, match="unknown experiment"):
        run_experiment("fig99")


def test_duplicate_registration_rejected():
    with pytest.raises(ValidationError):
        register("table5", "dup", "x")(lambda: None)


def test_run_writes_csv(tmp_path):
    result = run_experiment("agreement", print_output=False)
    assert isinstance(result, ExperimentResult)
    csv_path = os.path.join(os.environ["REPRO_RESULTS_DIR"], "agreement.csv")
    assert os.path.exists(csv_path)
    with open(csv_path) as fh:
        assert fh.readline().startswith("T,")


def test_render_contains_title_and_notes():
    result = run_experiment("agreement", print_output=False, write_csv=False)
    text = result.render()
    assert "absolute price difference" in text
    assert "note:" in text


def test_agreement_values_tiny():
    result = run_experiment("agreement", print_output=False, write_csv=False)
    for series in result.series.values():
        assert all(v < 1e-8 for v in series.values())


def test_prop11_ratios_decrease():
    result = run_experiment("prop1.1", print_output=False, write_csv=False)
    for series in result.series.values():
        xs = sorted(series)
        assert series[xs[-1]] < series[xs[0]]


def test_fig7_bopm_fft_wins_l1():
    result = run_experiment("fig7-bopm", print_output=False, write_csv=False)
    top = max(result.series["fft-bopm L1"])
    assert result.series["fft-bopm L1"][top] < result.series["ql-bopm L1"][top]
