"""Unit tests for timing helpers."""

import time

from repro.util.timing import Timer, measure


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.002)
    first = t.elapsed
    with t:
        time.sleep(0.002)
    assert t.elapsed > first >= 0.002


def test_measure_returns_result():
    secs, result = measure(lambda: 41 + 1, min_time=0.001)
    assert result == 42
    assert secs >= 0.0


def test_measure_slow_call_runs_once():
    calls = []

    def slow():
        calls.append(1)
        time.sleep(0.06)
        return "done"

    secs, result = measure(slow, min_time=0.05)
    assert result == "done"
    assert len(calls) == 1
    assert secs >= 0.05


def test_measure_fast_call_repeats():
    calls = []
    measure(lambda: calls.append(1), min_time=0.01)
    assert len(calls) > 3
