"""Unit tests for timing helpers."""

import time

from repro.util.timing import Measurement, Timer, measure


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.002)
    first = t.elapsed
    with t:
        time.sleep(0.002)
    assert t.elapsed > first >= 0.002


def test_measure_returns_result():
    secs, result = measure(lambda: 41 + 1, min_time=0.001)
    assert result == 42
    assert secs >= 0.0


def test_measure_slow_call_runs_once():
    calls = []

    def slow():
        calls.append(1)
        time.sleep(0.06)
        return "done"

    secs, result = measure(slow, min_time=0.05)
    assert result == "done"
    assert len(calls) == 1
    assert secs >= 0.05


def test_measure_fast_call_repeats():
    calls = []
    measure(lambda: calls.append(1), min_time=0.01)
    assert len(calls) > 3


def test_measure_is_a_plain_two_tuple_to_old_callers():
    m = measure(lambda: 7, min_time=0.001)
    assert isinstance(m, tuple) and len(m) == 2
    secs, result = m  # historical unpacking still works
    assert result == 7 and secs == m[0]
    assert isinstance(m, Measurement)
    assert m.seconds == m[0] and m.result == m[1]


def test_measure_reports_per_repeat_spread():
    m = measure(lambda: sum(range(100)), min_time=0.005)
    assert m.repeats > 1
    assert 0.0 <= m.min_s <= m[0] <= m.max_s
    # the average of repeats must sit inside the observed band
    assert m.min_s <= m.max_s


def test_measure_slow_call_spread_degenerates_to_the_single_run():
    m = measure(lambda: time.sleep(0.06), min_time=0.05)
    assert m.repeats == 1
    assert m.min_s == m.max_s == m[0]
