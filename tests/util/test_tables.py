"""Unit tests for the table/series formatting helpers."""

from repro.util.tables import format_series, format_table, to_csv


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[-1]
        # all rows render to the same width
        assert len({len(line) for line in lines}) <= 2  # header sep differs

    def test_title(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_float_format_applied(self):
        out = format_table(["x"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in out
        assert "3.1416" not in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out and "y" in out


class TestFormatSeries:
    def test_union_of_x_values(self):
        series = {"a": {1: 10.0, 2: 20.0}, "b": {2: 5.0, 3: 7.0}}
        out = format_series(series)
        lines = out.splitlines()
        assert len(lines) == 2 + 3  # header + sep + three x rows

    def test_missing_points_dash(self):
        series = {"a": {1: 10.0}, "b": {2: 5.0}}
        out = format_series(series)
        assert "-" in out

    def test_x_name(self):
        out = format_series({"a": {1: 1.0}}, x_name="steps")
        assert out.splitlines()[0].startswith("steps")


class TestToCsv:
    def test_header_and_rows(self):
        csv = to_csv({"a": {1: 10.0}, "b": {1: 2.5}})
        lines = csv.strip().splitlines()
        assert lines[0] == "T,a,b"
        assert lines[1].startswith("1,")

    def test_missing_cell_empty(self):
        csv = to_csv({"a": {1: 10.0}, "b": {2: 2.5}})
        lines = csv.strip().splitlines()
        assert lines[1].endswith(",")  # b missing at x=1

    def test_roundtrip_precision(self):
        value = 0.1234567890123456789
        csv = to_csv({"a": {1: value}})
        assert repr(value) in csv
