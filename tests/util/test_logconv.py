"""Unit + property tests for the log-domain combinatorics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.logconv import binomial_pmf_weights, log_binomial, logsumexp_weighted


class TestLogBinomial:
    def test_small_values_exact(self):
        for h in range(10):
            for k in range(h + 1):
                assert math.isclose(
                    math.exp(float(log_binomial(h, k))),
                    math.comb(h, k),
                    rel_tol=1e-12,
                )

    def test_vectorised(self):
        out = log_binomial(5, np.array([0, 1, 2]))
        assert out.shape == (3,)
        assert math.isclose(math.exp(out[2]), 10.0, rel_tol=1e-12)


class TestBinomialPmfWeights:
    def test_sums_to_power(self):
        s0, s1 = 0.45, 0.52
        w = binomial_pmf_weights(100, math.log(s0), math.log(s1))
        assert math.isclose(w.sum(), (s0 + s1) ** 100, rel_tol=1e-12)

    def test_matches_direct_for_small_h(self):
        s0, s1 = 0.3, 0.65
        w = binomial_pmf_weights(12, math.log(s0), math.log(s1))
        direct = np.array(
            [math.comb(12, k) * s0 ** (12 - k) * s1**k for k in range(13)]
        )
        np.testing.assert_allclose(w, direct, rtol=1e-12)

    def test_huge_h_stays_finite(self):
        w = binomial_pmf_weights(500_000, math.log(0.5), math.log(0.4999))
        assert np.all(np.isfinite(w))
        assert w.sum() <= 1.0

    def test_negative_h_rejected(self):
        with pytest.raises(ValueError):
            binomial_pmf_weights(-1, 0.0, 0.0)

    @given(
        h=st.integers(1, 400),
        s0=st.floats(0.05, 0.9),
        s1=st.floats(0.05, 0.9),
    )
    def test_property_sum_identity(self, h, s0, s1):
        total = s0 + s1
        w = binomial_pmf_weights(h, math.log(s0), math.log(s1))
        assert math.isclose(w.sum(), total**h, rel_tol=1e-9)


def test_logsumexp_weighted():
    terms = np.log(np.array([1.0, 2.0, 3.0]))
    assert math.isclose(logsumexp_weighted(terms), math.log(6.0), rel_tol=1e-12)


def test_logsumexp_handles_neg_inf():
    terms = np.array([-np.inf, 0.0])
    assert math.isclose(logsumexp_weighted(terms), 0.0, abs_tol=1e-12)
