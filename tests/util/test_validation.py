"""Unit tests for the argument-validation helpers."""

import math

import pytest

from repro.util.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
)


class TestCheckFinite:
    def test_accepts_float(self):
        assert check_finite("x", 1.5) == 1.5

    def test_accepts_int(self):
        assert check_finite("x", 3) == 3.0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="x"):
            check_finite("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_finite("x", math.inf)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_finite("x", "not a number")

    def test_rejects_none(self):
        with pytest.raises(ValidationError):
            check_finite("x", None)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1.0)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative("x", -1e-12)


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_outside_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="volatility"):
            check_in_range("volatility", -1.0, 0.0, 1.0)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer("n", 5) == 5

    def test_accepts_integral_float(self):
        assert check_integer("n", 4.0) == 4

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError):
            check_integer("n", 4.5)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_integer("n", True)

    def test_accepts_numpy_integer(self):
        import numpy as np

        assert check_integer("n", np.int64(7)) == 7

    def test_minimum_enforced(self):
        with pytest.raises(ValidationError):
            check_integer("n", 0, minimum=1)

    def test_minimum_boundary_ok(self):
        assert check_integer("n", 1, minimum=1) == 1

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
