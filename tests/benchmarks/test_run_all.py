"""The one-command suite: runner, trajectory rows, regression gate."""

import json

import pytest

SUMMARY = {"headline_speedup": 2.0, "max_drift": 1e-12}


def make_report(
    name="fake", *, smoke=False, cells_per_sec=100.0, quotes_per_sec=None,
    hit_rate=None, speedup=2.0,
):
    return {
        "benchmark": name,
        "schema": 2,
        "smoke": smoke,
        "host_cpus": 1,
        "telemetry": {
            "cells_per_sec": cells_per_sec,
            "quotes_per_sec": quotes_per_sec,
            "hit_rate": hit_rate,
        },
        "summary": {"headline_speedup": speedup, "max_drift": 0.0},
    }


GOOD_SCRIPT = """\
import argparse, json
p = argparse.ArgumentParser()
p.add_argument("--out", required=True)
p.add_argument("--smoke", "--quick", action="store_true", dest="smoke")
a = p.parse_args()
report = {
    "benchmark": "fake", "schema": 2, "smoke": a.smoke, "host_cpus": 1,
    "telemetry": {
        "cells_per_sec": 100.0, "quotes_per_sec": None, "hit_rate": None,
    },
    "summary": {"headline_speedup": 2.0, "max_drift": 0.0},
}
with open(a.out, "w") as fh:
    json.dump(report, fh)
"""

FAILING_SCRIPT = """\
import sys
print("gate blew: drift 0.5 > tolerance")
sys.exit(3)
"""

INVALID_SCRIPT = """\
import argparse, json
p = argparse.ArgumentParser()
p.add_argument("--out", required=True)
p.add_argument("--smoke", "--quick", action="store_true", dest="smoke")
a = p.parse_args()
with open(a.out, "w") as fh:
    json.dump({"benchmark": "junk", "schema": 999}, fh)
"""


@pytest.fixture
def fake_bench_dir(tmp_path):
    bench_dir = tmp_path / "benches"
    bench_dir.mkdir()
    (bench_dir / "good.py").write_text(GOOD_SCRIPT)
    (bench_dir / "failing.py").write_text(FAILING_SCRIPT)
    (bench_dir / "invalid.py").write_text(INVALID_SCRIPT)
    return bench_dir


class TestRunSuite:
    def test_reports_collected_and_validated(
        self, run_all, fake_bench_dir, tmp_path
    ):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        reports, failures = run_all.run_suite(
            smoke=True,
            out_dir=str(out_dir),
            bench_dir=str(fake_bench_dir),
            benches=(("good", "good.py", "--smoke"),),
        )
        assert failures == []
        assert set(reports) == {"good"}
        assert reports["good"]["smoke"] is True  # the flag reached it
        assert (out_dir / "BENCH_good.json").exists()

    def test_full_size_omits_the_smoke_flag(
        self, run_all, fake_bench_dir, tmp_path
    ):
        reports, _ = run_all.run_suite(
            smoke=False,
            out_dir=str(tmp_path),
            bench_dir=str(fake_bench_dir),
            benches=(("good", "good.py", "--smoke"),),
        )
        assert reports["good"]["smoke"] is False

    def test_one_broken_bench_does_not_hide_the_others(
        self, run_all, fake_bench_dir, tmp_path
    ):
        reports, failures = run_all.run_suite(
            smoke=True,
            out_dir=str(tmp_path),
            bench_dir=str(fake_bench_dir),
            benches=(
                ("boom", "failing.py", "--smoke"),
                ("good", "good.py", "--smoke"),
                ("junk", "invalid.py", "--smoke"),
            ),
        )
        assert set(reports) == {"good"}  # the suite ran to completion
        assert sorted(name for name, _ in failures) == ["boom", "junk"]
        details = dict(failures)
        assert "exit 3" in details["boom"]
        assert "gate blew" in details["boom"]  # output tail preserved
        assert "invalid report" in details["junk"]


class TestTrajectoryRows:
    def test_build_append_load_round_trip(self, trajectory, tmp_path):
        path = tmp_path / "traj.jsonl"
        row = trajectory.build_row(
            {"risk": make_report(cells_per_sec=250.0)},
            smoke=True, commit="abc1234", timestamp=1000.0,
        )
        assert row["schema"] == trajectory.TRAJECTORY_SCHEMA
        assert row["commit"] == "abc1234"
        assert row["smoke"] is True
        assert row["benches"]["risk"] == {
            "headline_speedup": 2.0,
            "max_drift": 0.0,
            "cells_per_sec": 250.0,
            "quotes_per_sec": None,
            "hit_rate": None,
        }
        trajectory.append_row(str(path), row)
        trajectory.append_row(str(path), row)
        rows = trajectory.load_rows(str(path))
        assert rows == [row, row]
        # one sorted-keys JSON object per line: stable, diffable history
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line) == row
        keys = list(json.loads(first_line))
        assert keys == sorted(keys)

    def test_missing_file_is_empty_history(self, trajectory, tmp_path):
        assert trajectory.load_rows(str(tmp_path / "absent.jsonl")) == []

    def test_upsert_skips_rerun_of_same_commit_and_mode(
        self, trajectory, tmp_path
    ):
        path = str(tmp_path / "traj.jsonl")
        row = trajectory.build_row({}, smoke=True, commit="abc", timestamp=1)
        assert trajectory.upsert_row(path, row) == "appended"
        rerun = trajectory.build_row({}, smoke=True, commit="abc", timestamp=2)
        assert trajectory.upsert_row(path, rerun) == "skipped"
        rows = trajectory.load_rows(path)
        assert len(rows) == 1
        assert rows[0]["timestamp"] == 1  # original row untouched

    def test_upsert_same_commit_different_mode_appends(
        self, trajectory, tmp_path
    ):
        path = str(tmp_path / "traj.jsonl")
        smoke = trajectory.build_row({}, smoke=True, commit="abc", timestamp=1)
        full = trajectory.build_row({}, smoke=False, commit="abc", timestamp=2)
        assert trajectory.upsert_row(path, smoke) == "appended"
        assert trajectory.upsert_row(path, full) == "appended"
        assert len(trajectory.load_rows(path)) == 2

    def test_upsert_force_replaces_in_place(self, trajectory, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        first = trajectory.build_row({}, smoke=True, commit="abc", timestamp=1)
        other = trajectory.build_row({}, smoke=True, commit="def", timestamp=2)
        trajectory.upsert_row(path, first)
        trajectory.upsert_row(path, other)
        redo = trajectory.build_row({}, smoke=True, commit="abc", timestamp=3)
        assert trajectory.upsert_row(path, redo, force=True) == "replaced"
        rows = trajectory.load_rows(path)
        assert [r["commit"] for r in rows] == ["abc", "def"]  # order kept
        assert rows[0]["timestamp"] == 3

    def test_upsert_without_commit_always_appends(self, trajectory, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        row = trajectory.build_row({}, smoke=True, commit=None, timestamp=1)
        row["commit"] = None  # outside any git checkout
        assert trajectory.upsert_row(path, row) == "appended"
        assert trajectory.upsert_row(path, row) == "appended"
        assert len(trajectory.load_rows(path)) == 2

    def test_last_comparable_never_mixes_smoke_and_full(self, trajectory):
        full = trajectory.build_row({}, smoke=False, commit="a", timestamp=1)
        smoke = trajectory.build_row({}, smoke=True, commit="b", timestamp=2)
        newer = trajectory.build_row({}, smoke=False, commit="c", timestamp=3)
        history = [full, smoke, newer]
        cur_full = trajectory.build_row({}, smoke=False, commit="d", timestamp=4)
        cur_smoke = trajectory.build_row({}, smoke=True, commit="e", timestamp=5)
        assert trajectory.last_comparable(history, cur_full) is newer
        assert trajectory.last_comparable(history, cur_smoke) is smoke
        assert trajectory.last_comparable([full], cur_smoke) is None


class TestRegressionGate:
    def _rows(self, trajectory, old_rate, new_rate):
        prev = trajectory.build_row(
            {"risk": make_report(cells_per_sec=old_rate)},
            smoke=True, commit="old", timestamp=1,
        )
        cur = trajectory.build_row(
            {"risk": make_report(cells_per_sec=new_rate)},
            smoke=True, commit="new", timestamp=2,
        )
        return prev, cur

    def test_synthetic_20pct_cells_per_sec_drop_is_flagged(self, trajectory):
        prev, cur = self._rows(trajectory, 1000.0, 800.0)  # −20%
        flags = trajectory.check_regression(prev, cur, threshold=0.15)
        assert len(flags) == 1
        assert "risk.cells_per_sec" in flags[0]
        assert "1000" in flags[0] and "800" in flags[0]

    def test_drop_within_threshold_passes(self, trajectory):
        prev, cur = self._rows(trajectory, 1000.0, 900.0)  # −10%
        assert trajectory.check_regression(prev, cur, threshold=0.20) == []
        # the default threshold is strict: exactly-at never flags
        prev, cur = self._rows(trajectory, 1000.0, 800.0)
        assert trajectory.check_regression(prev, cur, threshold=0.20) == []

    def test_improvements_and_missing_metrics_never_flag(self, trajectory):
        prev, cur = self._rows(trajectory, 800.0, 1000.0)  # improvement
        assert trajectory.check_regression(prev, cur) == []
        # a brand-new bench has no baseline: not a regression
        prev = trajectory.build_row({}, smoke=True, commit="o", timestamp=1)
        cur = trajectory.build_row(
            {"risk": make_report(cells_per_sec=1.0)},
            smoke=True, commit="n", timestamp=2,
        )
        assert trajectory.check_regression(prev, cur) == []
        # None on either side (bench measures no such rate) is skipped
        prev, cur = self._rows(trajectory, 1000.0, 1.0)
        prev["benches"]["risk"]["cells_per_sec"] = None
        assert trajectory.check_regression(prev, cur) == []

    def test_threshold_validated(self, trajectory):
        prev, cur = self._rows(trajectory, 1.0, 1.0)
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                trajectory.check_regression(prev, cur, threshold=bad)


class TestValidateReport:
    def test_accepts_a_well_formed_report(self, bench_conftest):
        bench_conftest.validate_report(make_report())

    def test_missing_header_schema_or_telemetry_rejected(self, bench_conftest):
        for mutate in (
            lambda r: r.pop("benchmark"),
            lambda r: r.pop("telemetry"),
            lambda r: r.update(schema=999),
            lambda r: r["telemetry"].pop("cells_per_sec"),
            lambda r: r.pop("summary"),
            lambda r: r["summary"].pop("headline_speedup"),
        ):
            report = make_report()
            mutate(report)
            with pytest.raises(ValueError):
                bench_conftest.validate_report(report)
        with pytest.raises(ValueError):
            bench_conftest.validate_report("not a dict")


class TestSuiteTrace:
    def test_exported_trace_is_loadable_and_valid(self, run_all, tmp_path):
        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        run_all.export_suite_trace(
            {"risk": make_report(smoke=True), "service": make_report()},
            str(out),
        )
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        names = [
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert names[0] == "run_all"
        assert set(names[1:]) == {"risk", "service"}
