"""Load the ``benchmarks/`` modules by path for the suite tests.

``benchmarks/`` is not a package and its ``conftest.py`` shares a bare
module name with pytest's own conftests, so the modules are imported
under prefixed names via the same loader ``run_all.py`` uses.
"""

import importlib.util
import os
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)


def _load(name: str, filename: str):
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(BENCH_DIR, filename)
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="session")
def bench_conftest():
    return _load("bench_conftest", "conftest.py")


@pytest.fixture(scope="session")
def trajectory():
    return _load("bench_trajectory", "trajectory.py")


@pytest.fixture(scope="session")
def run_all():
    return _load("bench_run_all", "run_all.py")
