"""Tests for ScenarioEngine: backend agreement, chunking, ordering, meta.

Backend agreement is the subsystem's central contract: process, thread and
serial execution must return the *same* prices in the *same* (flat grid)
order — the chunking and transport layers must be numerically invisible.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.api import price_american, price_many
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.risk import ScenarioEngine, ScenarioGrid
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()
STEPS = 128


@pytest.fixture(scope="module")
def grid():
    return ScenarioGrid.cartesian(
        SPEC,
        spot_bumps=(-0.05, 0.0, 0.05),
        vol_bumps=(-0.1, 0.0, 0.1),
        rate_bumps=(0.0, 0.002),
    )


@pytest.fixture(scope="module")
def serial_result(grid):
    return ScenarioEngine(backend="serial").price_grid(grid, STEPS)


class TestBackendAgreement:
    def test_serial_matches_per_cell_api(self, grid, serial_result):
        for cell, res in zip(grid, serial_result.results):
            direct = price_american(cell.spec, STEPS)
            assert res.price == pytest.approx(direct.price, rel=1e-12)

    def test_process_agrees_with_serial(self, grid, serial_result):
        r = ScenarioEngine(backend="process", workers=2, chunk_size=3).price_grid(
            grid, STEPS
        )
        np.testing.assert_allclose(
            r.prices, serial_result.prices, rtol=1e-12, atol=0.0
        )

    def test_thread_agrees_with_serial(self, grid, serial_result):
        r = ScenarioEngine(backend="thread", workers=3, chunk_size=2).price_grid(
            grid, STEPS
        )
        np.testing.assert_allclose(
            r.prices, serial_result.prices, rtol=1e-12, atol=0.0
        )

    def test_chunk_size_does_not_change_prices(self, grid, serial_result):
        for chunk_size in (1, 4, 100):
            r = ScenarioEngine(backend="serial", chunk_size=chunk_size).price_grid(
                grid, STEPS
            )
            np.testing.assert_array_equal(r.prices, serial_result.prices)

    def test_mixed_styles_and_rights(self):
        cells = [
            SPEC,
            SPEC.with_right(Right.PUT),
            SPEC.with_style(Style.EUROPEAN),
            dataclasses.replace(SPEC, strike=100.0, style=Style.EUROPEAN),
        ]
        serial = ScenarioEngine(backend="serial").price_grid(cells, STEPS)
        threaded = ScenarioEngine(
            backend="thread", workers=2, chunk_size=1
        ).price_grid(cells, STEPS)
        np.testing.assert_allclose(
            threaded.prices, serial.prices, rtol=1e-12, atol=0.0
        )


class TestChunking:
    def test_single_cell_grid(self):
        r = ScenarioEngine(backend="process", workers=2).price_grid([SPEC], STEPS)
        assert r.meta["n_chunks"] == 1
        assert r.meta["backend"] == "serial"  # one chunk short-circuits the pool
        assert r.prices.shape == (1,)
        assert r.prices[0] == pytest.approx(price_american(SPEC, STEPS).price)

    def test_fewer_cells_than_workers(self):
        cells = [SPEC, dataclasses.replace(SPEC, strike=120.0)]
        r = ScenarioEngine(
            backend="process", workers=4, chunk_size=1
        ).price_grid(cells, STEPS)
        assert r.meta["n_chunks"] == 2
        serial = ScenarioEngine(backend="serial").price_grid(cells, STEPS)
        np.testing.assert_allclose(r.prices, serial.prices, rtol=1e-12, atol=0.0)

    def test_default_chunking_covers_grid(self, grid):
        engine = ScenarioEngine(workers=3)
        chunks = engine._chunks(len(grid))
        assert chunks[0][0] == 0
        assert chunks[-1][1] == len(grid)
        for (_, hi), (lo, _) in zip(chunks, chunks[1:]):
            assert hi == lo  # contiguous, no gaps or overlaps

    def test_explicit_chunk_size_validated(self):
        with pytest.raises(ValidationError):
            ScenarioEngine(chunk_size=0)


class TestResultEnvelope:
    def test_flat_order_matches_grid(self, grid, serial_result):
        spots = np.array([c.spec.spot for c in grid])
        # same-vol/rate cells with a higher spot must price higher (calls)
        base = serial_result.prices.reshape(grid.shape)
        assert np.all(np.diff(base[0, :, 1, 0, 0]) > 0)
        assert len(serial_result.results) == len(spots)

    def test_prices_grid_reshapes(self, grid, serial_result):
        assert serial_result.prices_grid().shape == grid.shape

    def test_meta_records_model_closure(self, grid):
        r = ScenarioEngine(backend="thread", workers=2, chunk_size=3).price_grid(
            grid, STEPS
        )
        meta = r.meta
        assert meta["backend"] == "thread"
        assert meta["workers"] == 2
        assert meta["n_cells"] == len(grid)
        assert meta["wall_s"] > 0.0
        assert meta["cells_wall_s"] > 0.0
        assert meta["measured_speedup"] == pytest.approx(
            meta["cells_wall_s"] / meta["wall_s"]
        )
        # Brent prediction for p=2 lies in (1, 2] for a wide grid
        assert 1.0 < meta["predicted_speedup"] <= 2.0
        assert meta["parallelism"] > 1.0

    def test_workspan_is_parallel_composition(self, grid, serial_result):
        cell_spans = [r.workspan.span for r in serial_result.results]
        cell_work = sum(r.workspan.work for r in serial_result.results)
        assert serial_result.workspan.span == pytest.approx(max(cell_spans))
        assert serial_result.workspan.work == pytest.approx(cell_work)


class TestWorkerEngineReuse:
    def test_engine_survives_pickled_policy_copies(self):
        """Chunk payloads unpickle fresh AdvancePolicy copies; the worker's
        plan-caching engine must survive them (value equality, not identity)."""
        import pickle

        from repro.core.fftstencil import DEFAULT_POLICY
        from repro.risk.engine import _worker_engine, _worker_init

        _worker_init([], DEFAULT_POLICY)
        first = _worker_engine(DEFAULT_POLICY)
        copy = pickle.loads(pickle.dumps(DEFAULT_POLICY))
        assert copy is not DEFAULT_POLICY
        assert _worker_engine(copy) is first

    def test_changed_policy_rebuilds_engine(self):
        from repro.core.fftstencil import AdvancePolicy, DEFAULT_POLICY
        from repro.risk.engine import _worker_engine, _worker_init

        _worker_init([], DEFAULT_POLICY)
        first = _worker_engine(DEFAULT_POLICY)
        assert _worker_engine(AdvancePolicy(mode="direct")) is not first


class TestValidationAndDelegation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioEngine(backend="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioEngine(workers=0)

    def test_price_many_workers_delegates(self):
        strip = [dataclasses.replace(SPEC, strike=k) for k in (110.0, 120.0, 130.0)]
        serial = price_many(strip, STEPS)
        fanned = price_many(strip, STEPS, workers=2, backend="thread")
        for a, b in zip(serial, fanned):
            assert b.price == pytest.approx(a.price, rel=1e-12)

    def test_price_many_workers_rejects_shared_engine(self):
        from repro.core.fftstencil import AdvanceEngine

        with pytest.raises(ValidationError):
            price_many([SPEC], STEPS, workers=2, engine=AdvanceEngine())

    def test_price_many_empty_with_workers(self):
        assert price_many([], STEPS, workers=4) == []

    def test_price_many_invalid_workers_rejected(self):
        for bad in (0, -2):
            with pytest.raises(ValidationError):
                price_many([SPEC], STEPS, workers=bad)

    def test_price_many_bad_backend_fails_fast(self):
        # even on the serial default path — the typo must not sit latent
        with pytest.raises(ValidationError):
            price_many([SPEC], STEPS, backend="proces")


class TestChunkDedupIndices:
    def test_dedup_indices_rebased_to_grid_order(self):
        base = paper_benchmark_spec()
        s = [
            dataclasses.replace(base, strike=k)
            for k in (110.0, 120.0, 130.0, 140.0)
        ]
        # chunk_size=3 puts the duplicates in the second chunk: their
        # chunk-local primary index 0 must surface as grid index 3
        specs = [s[0], s[1], s[2], s[3], s[3], s[3]]
        engine = ScenarioEngine(backend="serial", workers=2, chunk_size=3)
        results = engine.price_specs(specs, 32)
        assert "deduplicated_of" not in results[3].meta
        assert results[4].meta["deduplicated_of"] == 3
        assert results[5].meta["deduplicated_of"] == 3
        assert results[4].price == results[3].price

    def test_price_specs_empty_returns_empty(self):
        assert ScenarioEngine(backend="serial").price_specs([], 16) == []


def _square_task(engine, items):
    """Module-level map_chunks task (picklable for the process backend)."""
    assert engine is not None  # every chunk gets a real AdvanceEngine
    return [x * x for x in items]


def _price_task(engine, payloads):
    return [
        price_american(spec, steps, engine=engine).price
        for spec, steps in payloads
    ]


class TestMapChunks:
    def test_serial_preserves_order(self):
        engine = ScenarioEngine(backend="serial")
        assert engine.map_chunks(list(range(10)), _square_task) == [
            x * x for x in range(10)
        ]

    def test_thread_pool_matches_serial(self):
        items = list(range(17))
        serial = ScenarioEngine(backend="serial").map_chunks(items, _square_task)
        pooled = ScenarioEngine(
            backend="thread", workers=3, chunk_size=4
        ).map_chunks(items, _square_task)
        assert pooled == serial

    def test_engine_backed_task_prices_correctly(self):
        payloads = [
            (dataclasses.replace(SPEC, strike=k), 32)
            for k in (110.0, 120.0, 130.0)
        ]
        got = ScenarioEngine(backend="thread", workers=2, chunk_size=1).map_chunks(
            payloads, _price_task
        )
        for (spec, steps), price in zip(payloads, got):
            assert price == price_american(spec, steps).price

    def test_empty_items(self):
        assert ScenarioEngine(backend="serial").map_chunks([], _square_task) == []
