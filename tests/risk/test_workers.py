"""Affinity-aware worker sizing and batched-grid engine counters."""

import os

import pytest

from repro.core.api import price_american
from repro.options.contract import paper_benchmark_spec
from repro.risk import ScenarioEngine, ScenarioGrid, available_workers

SPEC = paper_benchmark_spec()


class TestAvailableWorkers:
    def test_uses_affinity_mask_when_present(self, monkeypatch):
        """A pinned process must size its pool from the affinity mask, not
        the host's core count (oversubscription satellite)."""
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 3}, raising=False
        )
        assert available_workers() == 2
        assert ScenarioEngine().workers == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert available_workers() == 6
        assert ScenarioEngine().workers == 6

    def test_empty_mask_falls_back(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: set(), raising=False
        )
        assert available_workers() == 4

    def test_explicit_workers_still_win(self, monkeypatch):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0}, raising=False
        )
        assert ScenarioEngine(workers=3).workers == 3


class TestSerialGridEngineMeta:
    def test_serial_grid_reports_batched_engine_counters(self):
        grid = ScenarioGrid.cartesian(
            SPEC, vol_bumps=(-0.05, 0.0, 0.05), rate_bumps=(0.0, 0.002)
        )
        result = ScenarioEngine(backend="serial").price_grid(grid, 64)
        info = result.meta["engine"]
        # every cell differs in vol or rate, yet the grid rode the
        # multi-kernel batch path
        assert info["batch_advances"] > 0
        assert info["batched_inputs"] >= len(grid)
        for cell, r in zip(grid, result.results):
            assert r.price == pytest.approx(
                price_american(cell.spec, 64).price, rel=1e-12
            )

    def test_pool_backends_merge_worker_engine_meta(self):
        # workers ship per-chunk engine-counter deltas back with their
        # results; the parent merges them, so pooled runs report the same
        # counter dialect as serial ones
        cells = [SPEC] * 3
        result = ScenarioEngine(
            backend="thread", workers=2, chunk_size=1
        ).price_grid(cells, 32)
        info = result.meta["engine"]
        assert info["advances"] > 0
        assert info["base_batch_rows"] > 0
