"""greeks_many vs per-spec american_greeks, across engine backends."""

import dataclasses

import pytest

from repro.options.contract import OptionSpec, Right, paper_benchmark_spec
from repro.options.greeks import LADDER_SIZE, american_greeks, greeks_many
from repro.risk import ScenarioEngine

FIELDS = ("price", "delta", "gamma", "vega", "theta", "rho")


def make(**kw):
    defaults = dict(
        spot=100.0, strike=100.0, rate=0.05, volatility=0.25, dividend_yield=0.02
    )
    defaults.update(kw)
    return OptionSpec(**defaults)


@pytest.fixture(scope="module")
def book():
    return [
        make(),
        make(right=Right.PUT),
        make(strike=120.0, dividend_yield=0.0),
        paper_benchmark_spec(),
    ]


class TestAgreement:
    def test_matches_per_spec_greeks(self, book):
        many = greeks_many(book, 128)
        for spec, g in zip(book, many):
            single = american_greeks(spec, 128)
            for f in FIELDS:
                assert getattr(g, f) == pytest.approx(
                    getattr(single, f), rel=1e-10, abs=1e-12
                ), f

    def test_parallel_engine_matches_serial(self, book):
        serial = greeks_many(book, 128)
        threaded = greeks_many(
            book, 128, engine=ScenarioEngine(backend="thread", workers=2)
        )
        for a, b in zip(serial, threaded):
            for f in FIELDS:
                assert getattr(b, f) == pytest.approx(
                    getattr(a, f), rel=1e-12, abs=1e-14
                ), f

    def test_empty_book(self):
        assert greeks_many([], 64) == []

    def test_ladder_size_is_ten(self):
        # 1 base price + 9 reprices — the count the docstrings advertise
        assert LADDER_SIZE == 10
