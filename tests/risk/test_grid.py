"""Tests for ScenarioGrid construction (shapes, order, labels, validation)."""

import dataclasses

import pytest

from repro.options.contract import OptionSpec, Right, paper_benchmark_spec
from repro.risk.grid import ScenarioCell, ScenarioGrid
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()


class TestCartesian:
    def test_shape_and_size(self):
        grid = ScenarioGrid.cartesian(
            SPEC,
            spot_bumps=(-0.1, 0.0, 0.1),
            vol_bumps=(-0.2, 0.0, 0.2),
            rate_bumps=(0.0, 0.005),
        )
        assert grid.shape == (1, 3, 3, 2, 1)
        assert len(grid) == 18

    def test_single_spec_equals_list_of_one(self):
        a = ScenarioGrid.cartesian(SPEC, spot_bumps=(0.0, 0.01))
        b = ScenarioGrid.cartesian([SPEC], spot_bumps=(0.0, 0.01))
        assert a.specs == b.specs

    def test_bumps_applied_relative(self):
        grid = ScenarioGrid.cartesian(
            SPEC, spot_bumps=(-0.05,), vol_bumps=(0.1,)
        )
        cell = grid.cells[0]
        assert cell.spec.spot == pytest.approx(SPEC.spot * 0.95)
        assert cell.spec.volatility == pytest.approx(SPEC.volatility * 1.1)

    def test_rate_bump_absolute_and_clamped(self):
        grid = ScenarioGrid.cartesian(SPEC, rate_bumps=(-1.0, 0.002))
        down, up = grid.cells
        assert down.spec.rate == 0.0  # clamped at the zero floor
        assert down.labels["rate"] == pytest.approx(-SPEC.rate)  # applied shift
        assert up.spec.rate == pytest.approx(SPEC.rate + 0.002)

    def test_expiry_bump_additive_days(self):
        grid = ScenarioGrid.cartesian(SPEC, expiry_bumps=(-21.0, 0.0, 21.0))
        assert [c.spec.expiry_days for c in grid.cells] == [
            SPEC.expiry_days - 21.0,
            SPEC.expiry_days,
            SPEC.expiry_days + 21.0,
        ]

    def test_flat_order_is_expiry_innermost(self):
        grid = ScenarioGrid.cartesian(
            SPEC, spot_bumps=(0.0, 0.01), expiry_bumps=(0.0, 1.0)
        )
        labels = [(c.labels["spot"], c.labels["expiry"]) for c in grid.cells]
        assert labels == [(0.0, 0.0), (0.0, 1.0), (0.01, 0.0), (0.01, 1.0)]

    def test_multi_spec_outermost(self):
        put = SPEC.with_right(Right.PUT)
        grid = ScenarioGrid.cartesian([SPEC, put], spot_bumps=(0.0, 0.01))
        assert [c.labels["spec"] for c in grid.cells] == [0, 0, 1, 1]
        assert grid.shape[0] == 2

    def test_indices_match_flat_order(self):
        grid = ScenarioGrid.cartesian(SPEC, spot_bumps=(-0.01, 0.0, 0.01))
        assert [c.index for c in grid.cells] == list(range(len(grid)))


class TestExplicit:
    def test_specs_round_trip(self):
        strip = [dataclasses.replace(SPEC, strike=k) for k in (100.0, 120.0)]
        grid = ScenarioGrid.explicit(strip)
        assert grid.specs == strip
        assert grid.shape == (2,)
        assert grid.cells[1].labels == {"spec": 1}


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.explicit([])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.cartesian(SPEC, spot_bumps=())

    def test_empty_spec_list_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.cartesian([])

    def test_spot_bump_through_zero_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.cartesian(SPEC, spot_bumps=(-1.0,))

    def test_vol_bump_through_zero_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.cartesian(SPEC, vol_bumps=(-1.5,))

    def test_expiry_bump_through_zero_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioGrid.cartesian(SPEC, expiry_bumps=(-SPEC.expiry_days,))

    def test_mismatched_cell_index_rejected(self):
        cell = ScenarioCell(index=5, spec=SPEC)
        with pytest.raises(ValidationError):
            ScenarioGrid(cells=(cell,))
