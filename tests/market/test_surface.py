"""VolSurface: interpolation semantics and static no-arbitrage diagnostics."""

import math

import numpy as np
import pytest

from repro import VolSurface
from repro.market.surface import ArbitrageViolation
from repro.util.validation import ValidationError

SPOT = 100.0
STRIKES = np.array([80.0, 100.0, 125.0])
EXPIRIES = np.array([0.25, 1.0, 2.0])


def smile_surface():
    """A gentle, arbitrage-free smile: vol rises away from the money and
    total variance grows with expiry."""
    vols = np.empty((len(STRIKES), len(EXPIRIES)))
    for i, k in enumerate(STRIKES):
        for j, t in enumerate(EXPIRIES):
            vols[i, j] = 0.2 + 0.05 * abs(math.log(k / SPOT)) + 0.01 * t
    return VolSurface(
        strikes=STRIKES, expiries_years=EXPIRIES, vols=vols, spot=SPOT
    )


class TestConstruction:
    def test_arrays_are_frozen_copies(self):
        vols = np.full((3, 3), 0.2)
        surf = VolSurface(
            strikes=STRIKES, expiries_years=EXPIRIES, vols=vols, spot=SPOT
        )
        vols[0, 0] = 99.0  # the caller's array, not the surface's
        assert surf.vols[0, 0] == 0.2
        with pytest.raises(ValueError):
            surf.vols[0, 0] = 1.0  # write-locked

    @pytest.mark.parametrize(
        "kw",
        [
            dict(strikes=np.array([100.0, 80.0, 125.0])),  # unsorted
            dict(strikes=np.array([-1.0, 80.0, 125.0])),  # non-positive
            dict(strikes=np.array([80.0, 80.0, 125.0])),  # duplicate
            dict(expiries_years=np.array([1.0, 0.25, 2.0])),  # unsorted
            dict(expiries_years=np.array([0.0, 1.0, 2.0])),  # non-positive
            dict(vols=np.full((2, 3), 0.2)),  # wrong shape
            dict(vols=np.full((3, 3), -0.2)),  # non-positive vols
            dict(vols=np.full((3, 3), float("nan"))),  # non-finite
            dict(spot=0.0),
        ],
    )
    def test_invalid_rejected(self, kw):
        good = dict(
            strikes=STRIKES,
            expiries_years=EXPIRIES,
            vols=np.full((3, 3), 0.2),
            spot=SPOT,
        )
        good.update(kw)
        with pytest.raises(ValidationError):
            VolSurface(**good)

    def test_flat_constructor(self):
        surf = VolSurface.flat(0.3, spot=SPOT)
        assert surf.vol(SPOT * 0.77, 0.5) == 0.3
        assert surf.check_no_arbitrage() == []


class TestInterpolation:
    def test_nodes_are_exact(self):
        surf = smile_surface()
        for i, k in enumerate(STRIKES):
            for j, t in enumerate(EXPIRIES):
                assert surf.vol(float(k), float(t)) == surf.vols[i, j]

    def test_time_interpolation_is_linear_in_total_variance(self):
        surf = smile_surface()
        k, t0, t1 = 100.0, 0.25, 1.0
        t = 0.5
        w0 = surf.vol(k, t0) ** 2 * t0
        w1 = surf.vol(k, t1) ** 2 * t1
        expected = w0 + (w1 - w0) * (t - t0) / (t1 - t0)
        assert surf.total_variance(k, t) == pytest.approx(expected, rel=1e-12)

    def test_strike_interpolation_is_linear_in_variance(self):
        surf = smile_surface()
        t = 1.0
        k_lo, k_hi = 80.0, 100.0
        k = math.exp(0.5 * (math.log(k_lo / SPOT) + math.log(k_hi / SPOT)))
        k *= SPOT  # midpoint in log-moneyness
        expected = 0.5 * (surf.vol(k_lo, t) ** 2 + surf.vol(k_hi, t) ** 2)
        assert surf.vol(k, t) ** 2 == pytest.approx(expected, rel=1e-12)

    def test_flat_extrapolation(self):
        surf = smile_surface()
        assert surf.vol(10.0, 1.0) == surf.vol(80.0, 1.0)  # below grid
        assert surf.vol(500.0, 1.0) == surf.vol(125.0, 1.0)  # above grid
        assert surf.vol(100.0, 0.01) == surf.vol(100.0, 0.25)  # short end
        assert surf.vol(100.0, 9.0) == surf.vol(100.0, 2.0)  # long end

    def test_rejects_non_positive_queries(self):
        surf = smile_surface()
        with pytest.raises(ValidationError):
            surf.vol(0.0, 1.0)
        with pytest.raises(ValidationError):
            surf.vol(100.0, -1.0)


class TestNoArbitrage:
    def test_clean_surface_has_no_violations(self):
        assert smile_surface().check_no_arbitrage() == []

    def test_calendar_violation_detected(self):
        vols = np.full((3, 3), 0.2)
        vols[1, 2] = 0.1  # w(1y)=0.04 > w(2y)=0.02: calendar arbitrage
        surf = VolSurface(
            strikes=STRIKES, expiries_years=EXPIRIES, vols=vols, spot=SPOT
        )
        found = surf.calendar_violations()
        assert [v.kind for v in found].count("calendar") == len(found) >= 1
        hit = next(v for v in found if v.strike == 100.0)
        assert hit.expiries == (1.0, 2.0)
        assert hit.amount == pytest.approx(0.2**2 * 1.0 - 0.1**2 * 2.0)

    def test_butterfly_violation_detected(self):
        vols = np.full((3, 3), 0.2)
        vols[1, :] = 0.8  # vol spike at the middle strike: C(K) above chord
        surf = VolSurface(
            strikes=STRIKES, expiries_years=EXPIRIES, vols=vols, spot=SPOT
        )
        found = surf.butterfly_violations()
        assert found
        assert all(v.kind == "butterfly" for v in found)
        assert {v.strike for v in found} == {100.0}

    def test_check_no_arbitrage_concatenates(self):
        vols = np.full((3, 3), 0.2)
        vols[1, 2] = 0.1
        vols[1, 0] = 0.8
        surf = VolSurface(
            strikes=STRIKES, expiries_years=EXPIRIES, vols=vols, spot=SPOT
        )
        kinds = {v.kind for v in surf.check_no_arbitrage()}
        assert kinds == {"calendar", "butterfly"}

    def test_violation_is_printable(self):
        v = ArbitrageViolation(
            kind="calendar", strike=100.0, expiries=(1.0, 2.0), amount=0.02
        )
        assert "calendar" in str(v)
        assert "K=100" in str(v)
