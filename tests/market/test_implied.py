"""Implied-vol inversion: round trips, fast paths, batching, service cache."""

import dataclasses

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro import QuoteService, implied_vol, implied_vol_many, price_american
from repro.core.fftstencil import AdvanceEngine
from repro.market.implied import (
    VOL_MAX,
    FitReport,
    european_implied_vol,
)
from repro.options.analytic import black_scholes, intrinsic_bounds
from repro.options.contract import Right, Style, paper_benchmark_spec
from repro.util.validation import ValidationError
from tests.conftest import call_specs

SPEC = paper_benchmark_spec()  # vol 0.2, dividend 0.0163
PUT = dataclasses.replace(SPEC, right=Right.PUT)
STEPS = 128


class TestEuropeanInversion:
    def test_round_trip(self):
        for vol in (0.08, 0.2, 0.55):
            spec = dataclasses.replace(SPEC, volatility=vol)
            quote = black_scholes(spec).price
            assert european_implied_vol(quote, spec) == pytest.approx(
                vol, abs=1e-9
            )

    def test_put_round_trip(self):
        quote = black_scholes(PUT).price
        assert european_implied_vol(quote, PUT) == pytest.approx(0.2, abs=1e-9)

    def test_out_of_range_raises(self):
        with pytest.raises(ValidationError):
            european_implied_vol(SPEC.spot, SPEC)  # above the v->inf limit
        with pytest.raises(ValidationError):
            european_implied_vol(0.0, SPEC)  # at the v->0 floor


class TestImpliedVol:
    @pytest.mark.parametrize("true_vol", [0.1, 0.2, 0.4])
    def test_round_trip_call(self, true_vol):
        spec = dataclasses.replace(SPEC, volatility=true_vol)
        quote = price_american(spec, STEPS).price
        r = implied_vol(quote, spec, STEPS)
        assert r.vol == pytest.approx(true_vol, abs=1e-6)
        assert r.residual <= 1e-8 * spec.strike

    def test_round_trip_put(self):
        quote = price_american(PUT, STEPS).price
        r = implied_vol(quote, PUT, STEPS)
        assert r.vol == pytest.approx(0.2, abs=1e-6)
        assert r.residual <= 1e-8 * PUT.strike

    def test_newton_fast_path_engages(self):
        """A clean ATM-ish quote should converge inside Newton, cheaply."""
        quote = price_american(SPEC, STEPS).price
        r = implied_vol(quote, SPEC, STEPS)
        assert r.newton
        assert r.solves <= 6

    def test_naive_brent_agrees_but_costs_more(self):
        quote = price_american(SPEC, STEPS).price
        fast = implied_vol(quote, SPEC, STEPS)
        naive = implied_vol(
            quote, SPEC, STEPS,
            newton=False, deamericanize=False, bracket=(0.05, 2.0),
        )
        assert naive.vol == pytest.approx(fast.vol, abs=1e-6)
        assert not naive.newton
        assert naive.solves > fast.solves

    def test_warm_seed_skips_the_probe(self):
        quote = price_american(SPEC, STEPS).price
        r = implied_vol(quote, SPEC, STEPS, seed=0.21)
        assert r.warm_start
        assert r.seed == 0.21
        assert r.vol == pytest.approx(0.2, abs=1e-6)

    def test_reported_price_matches_vol(self):
        quote = price_american(SPEC, STEPS).price
        r = implied_vol(quote, SPEC, STEPS)
        repriced = price_american(
            dataclasses.replace(SPEC, volatility=r.vol), STEPS
        ).price
        assert r.price == pytest.approx(repriced, abs=1e-12)

    def test_solver_configuration_respected(self):
        quote = price_american(SPEC, STEPS, model="trinomial").price
        r = implied_vol(quote, SPEC, STEPS, model="trinomial")
        assert r.vol == pytest.approx(0.2, abs=1e-6)

    def test_bad_bracket_rejected(self):
        quote = price_american(SPEC, STEPS).price
        with pytest.raises(ValidationError):
            implied_vol(quote, SPEC, STEPS, bracket=(2.0, 0.05))
        with pytest.raises(ValidationError):
            implied_vol(quote, SPEC, STEPS, bracket=(0.0, 2.0))


class TestOutOfBracket:
    def test_below_intrinsic_raises(self):
        itm = dataclasses.replace(SPEC, spot=200.0)
        with pytest.raises(ValidationError, match="below the American"):
            implied_vol(0.5 * (itm.spot - itm.strike), itm, STEPS)

    def test_call_at_or_above_spot_raises(self):
        with pytest.raises(ValidationError, match="at or above the spot"):
            implied_vol(SPEC.spot, SPEC, STEPS)

    def test_put_at_or_above_strike_raises(self):
        with pytest.raises(ValidationError, match="at or above the strike"):
            implied_vol(PUT.strike + 1.0, PUT, STEPS)

    def test_unreachable_at_vol_cap_raises(self):
        # just under the spot: valid by the static bounds, unreachable by
        # any vol in the search domain — detected by the lazy expansion
        with pytest.raises(ValidationError, match="volatility cap"):
            implied_vol(SPEC.spot * 0.999, SPEC, STEPS)

    def test_validation_spends_no_solves(self):
        def exploding(v):  # pragma: no cover — must never be called
            raise AssertionError("objective evaluated for an invalid quote")

        with pytest.raises(ValidationError):
            implied_vol(SPEC.spot + 1.0, SPEC, STEPS, price_fn=exploding)


class TestPropertyRoundTrip:
    """price(implied_vol(price(spec))) == price(spec) within 1e-8·K."""

    @given(spec=call_specs(), right=st.sampled_from([Right.CALL, Right.PUT]))
    def test_both_rights(self, spec, right):
        spec = spec.with_right(right)
        quote = price_american(spec, 64).price
        lower, upper = intrinsic_bounds(spec)
        # quotes pinned to the intrinsic floor (vega ~ 0) carry no vol
        # information — those regimes get the explicit tests above
        assume(quote - lower > 1e-6 * spec.strike)
        assume(upper - quote > 1e-6 * spec.strike)
        r = implied_vol(quote, spec, 64)
        repriced = price_american(
            dataclasses.replace(spec, volatility=r.vol), 64
        ).price
        assert abs(repriced - quote) <= 1e-8 * spec.strike
        assert r.vol <= VOL_MAX


class TestImpliedVolMany:
    def ladder(self, n=8, vol_of=lambda k: 0.2):
        specs, quotes = [], []
        for i in range(n):
            k = 100.0 + 5.0 * i
            s = dataclasses.replace(SPEC, strike=k, volatility=vol_of(k))
            specs.append(s)
            quotes.append(price_american(s, STEPS).price)
        return specs, quotes

    def test_matches_per_quote_inversion(self):
        smile = lambda k: 0.2 + 1e-3 * abs(k - 120.0) / 5.0  # noqa: E731
        specs, quotes = self.ladder(6, smile)
        report = implied_vol_many(specs, quotes, STEPS)
        assert isinstance(report, FitReport)
        for s, q, got in zip(specs, quotes, report.results):
            solo = implied_vol(q, s, STEPS)
            assert got.vol == pytest.approx(solo.vol, abs=1e-7)
            assert got.residual <= 1e-8 * s.strike

    def test_warm_starts_and_batch_economy(self):
        specs, quotes = self.ladder(8)
        report = implied_vol_many(specs, quotes, STEPS)
        assert report.warm_starts == 7  # every quote after the first
        naive_solves = sum(
            implied_vol(
                q, s, STEPS,
                newton=False, deamericanize=False, bracket=(0.05, 2.0),
            ).solves
            for s, q in zip(specs, quotes)
        )
        assert report.solves < naive_solves
        assert report.max_residual <= 1e-8 * SPEC.strike

    def test_expiry_change_restarts_the_seed(self):
        specs, quotes = self.ladder(3)
        other = dataclasses.replace(SPEC, expiry_days=126.0)
        specs.append(other)
        quotes.append(price_american(other, STEPS).price)
        report = implied_vol_many(specs, quotes, STEPS)
        assert [r.warm_start for r in report.results] == [
            False, True, True, False
        ]

    def test_shared_engine_is_shared(self):
        engine = AdvanceEngine()
        specs, quotes = self.ladder(4)
        implied_vol_many(specs, quotes, STEPS, engine=engine)
        assert engine.cache_info()["advances"] > 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError, match="pair up"):
            implied_vol_many([SPEC], [1.0, 2.0], STEPS)

    def test_empty_batch(self):
        report = implied_vol_many([], [], STEPS)
        assert report.results == []
        assert report.solves == 0
        assert report.max_residual == 0.0


class TestServiceImpliedVol:
    def test_round_trip_through_service(self):
        svc = QuoteService(steps_default=STEPS)
        quote = price_american(SPEC, STEPS).price
        r = svc.implied_vol(quote, SPEC)
        assert r.vol == pytest.approx(0.2, abs=1e-6)

    def test_repeat_inversion_runs_warm(self):
        svc = QuoteService(steps_default=STEPS)
        quote = price_american(SPEC, STEPS).price
        first = svc.implied_vol(quote, SPEC)
        solves_after_first = svc.stats()["service"]["solves"]
        again = svc.implied_vol(quote, SPEC)
        assert again.vol == first.vol
        assert svc.stats()["service"]["solves"] == solves_after_first
        assert svc.stats()["cache"]["hits"] >= again.solves

    def test_european_style_spec_inverts_the_american_price(self):
        svc = QuoteService(steps_default=STEPS)
        quote = price_american(SPEC, STEPS).price
        r = svc.implied_vol(quote, SPEC.with_style(Style.EUROPEAN))
        assert r.vol == pytest.approx(0.2, abs=1e-6)

    def test_requires_steps(self):
        svc = QuoteService()
        with pytest.raises(ValidationError, match="steps"):
            svc.implied_vol(3.0, SPEC)
