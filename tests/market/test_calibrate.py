"""calibrate_surface: grid recovery, sharding, and the scenario-tier loop."""

import dataclasses
import math

import pytest

from repro import (
    MarketQuote,
    ScenarioEngine,
    ScenarioGrid,
    calibrate_surface,
    price_american,
)
from repro.market.calibrate import CalibrationReport
from repro.options.contract import OptionSpec, Right
from repro.util.validation import ValidationError

STEPS = 96
BASE = OptionSpec(
    spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
    dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
)
STRIKES = (90.0, 100.0, 110.0)
EXPIRIES_DAYS = (126.0, 252.0)


def true_vol(strike: float, expiry_days: float) -> float:
    """The synthetic market's smile: skewed in moneyness, rising in T."""
    k = math.log(strike / BASE.spot)
    return 0.2 + 0.08 * k * k + 0.02 * (expiry_days / 252.0)


def synthetic_quotes(steps=STEPS):
    quotes = []
    for e in EXPIRIES_DAYS:
        for k in STRIKES:
            spec = dataclasses.replace(
                BASE, strike=k, expiry_days=e, volatility=true_vol(k, e)
            )
            quotes.append(MarketQuote(spec, price_american(spec, steps).price))
    return quotes


@pytest.fixture(scope="module")
def calibrated():
    return calibrate_surface(synthetic_quotes(), STEPS)


class TestCalibration:
    def test_recovers_the_generating_vols(self, calibrated):
        surface, report = calibrated
        for e in EXPIRIES_DAYS:
            for k in STRIKES:
                assert surface.vol(k, e / 252.0) == pytest.approx(
                    true_vol(k, e), abs=1e-6
                )
        assert report.max_residual <= 1e-8 * max(STRIKES)

    def test_report_shape(self, calibrated):
        surface, report = calibrated
        assert isinstance(report, CalibrationReport)
        assert len(report.fits) == len(EXPIRIES_DAYS)
        assert report.n_quotes == len(STRIKES) * len(EXPIRIES_DAYS)
        assert report.solves > 0
        assert 0.0 < report.solves_per_quote < 10.0
        assert report.meta["backend"] == "serial"
        # a smooth synthetic smile must calibrate arbitrage-free
        assert report.violations == []

    def test_warm_starts_within_each_ladder(self, calibrated):
        _, report = calibrated
        for fit in report.fits:
            flags = [r.warm_start for r in fit.results]
            assert flags == [False] + [True] * (len(STRIKES) - 1)

    def test_tuple_quotes_accepted(self):
        quotes = [(q.spec, q.price) for q in synthetic_quotes()]
        surface, _ = calibrate_surface(quotes, STEPS)
        assert surface.vol(100.0, 1.0) == pytest.approx(
            true_vol(100.0, 252.0), abs=1e-6
        )

    def test_parallel_matches_serial(self, calibrated):
        serial_surface, _ = calibrated
        surface, report = calibrate_surface(
            synthetic_quotes(), STEPS, workers=2, backend="thread"
        )
        assert report.meta["backend"] == "thread"
        assert (surface.vols == serial_surface.vols).all()

    def test_explicit_serial_backend(self):
        surface, report = calibrate_surface(
            synthetic_quotes(), STEPS, workers=2, backend="serial"
        )
        assert report.meta["backend"] == "serial"
        assert surface.vols.shape == (len(STRIKES), len(EXPIRIES_DAYS))


class TestValidation:
    def test_empty_quote_set_rejected(self):
        with pytest.raises(ValidationError, match="at least one quote"):
            calibrate_surface([], STEPS)

    def test_missing_grid_cell_rejected(self):
        quotes = synthetic_quotes()[:-1]
        with pytest.raises(ValidationError, match="missing"):
            calibrate_surface(quotes, STEPS)

    def test_duplicate_cell_rejected(self):
        quotes = synthetic_quotes()
        quotes.append(quotes[0])
        with pytest.raises(ValidationError, match="duplicate"):
            calibrate_surface(quotes, STEPS)

    def test_mixed_underlyings_rejected(self):
        quotes = synthetic_quotes()
        other = dataclasses.replace(quotes[0].spec, spot=55.0)
        quotes[0] = MarketQuote(other, quotes[0].price)
        with pytest.raises(ValidationError, match="spot"):
            calibrate_surface(quotes, STEPS)

    def test_non_finite_price_rejected(self):
        with pytest.raises(ValidationError):
            MarketQuote(BASE, float("nan"))


class TestSurfaceFeedsScenarioGrid:
    """The acceptance loop: calibrated surface → scenario grid → engine."""

    def test_grid_draws_cell_vols_from_the_surface(self, calibrated):
        surface, _ = calibrated
        grid = ScenarioGrid.cartesian(
            [dataclasses.replace(BASE, strike=k) for k in STRIKES],
            expiry_bumps=(-126.0, 0.0),
            vols=surface,
        )
        assert len(grid) == len(STRIKES) * 2
        for cell in grid:
            expected = surface.vol(
                cell.spec.strike, cell.spec.expiry_days / cell.spec.day_count
            )
            assert cell.spec.volatility == expected  # bit-exact
            assert cell.labels["surface_vol"] == expected

    def test_vol_bumps_apply_on_top_of_the_surface(self, calibrated):
        surface, _ = calibrated
        grid = ScenarioGrid.cartesian(
            BASE, vol_bumps=(-0.1, 0.0, 0.1), vols=surface
        )
        base_vol = surface.vol(BASE.strike, BASE.years)
        vols = [c.spec.volatility for c in grid]
        assert vols == [base_vol * 0.9, base_vol, base_vol * 1.1]

    def test_engine_prices_the_calibrated_grid(self, calibrated):
        surface, _ = calibrated
        grid = ScenarioGrid.cartesian(
            [dataclasses.replace(BASE, strike=k) for k in STRIKES],
            vols=surface,
        )
        result = ScenarioEngine(backend="serial").price_grid(grid, STEPS)
        for cell, priced in zip(grid, result.results):
            direct = price_american(cell.spec, STEPS).price
            assert priced.price == direct
            # the cell's vol is the calibrated one, so pricing the grid
            # reproduces the market quotes the surface was fitted to
            assert cell.spec.volatility == surface.vol(
                cell.spec.strike, cell.spec.years
            )

    def test_round_trip_to_market_quotes(self, calibrated):
        """grid(vols=surface) repricing matches the original quotes."""
        surface, _ = calibrated
        quotes = synthetic_quotes()
        # the deliberately wrong vol (0.5) must be overridden per cell
        grid = ScenarioGrid.cartesian(
            [dataclasses.replace(q.spec, volatility=0.5) for q in quotes],
            vols=surface,
        )
        result = ScenarioEngine(backend="serial").price_grid(grid, STEPS)
        for q, priced in zip(quotes, result.results):
            assert priced.price == pytest.approx(
                q.price, abs=1e-8 * q.spec.strike
            )

    def test_rejects_an_object_without_vol(self):
        with pytest.raises(ValidationError, match="vol\\(strike, years\\)"):
            ScenarioGrid.cartesian(BASE, vols=object())
