"""Lockstep ladder inversion: batched sweeps, per-quote bit-agreement."""

import dataclasses
import math

import pytest

from repro.core.api import price_many
from repro.core.fftstencil import AdvanceEngine
from repro.market.implied import implied_vol, implied_vol_many
from repro.options.contract import OptionSpec, Right
from repro.util.validation import ValidationError

BASE = OptionSpec(
    spot=100.0, strike=100.0, rate=0.03, volatility=0.2,
    dividend_yield=0.02, expiry_days=252.0, right=Right.CALL,
)
STEPS = 96


def build_ladder(n, right=Right.CALL):
    specs = []
    for i in range(n):
        strike = 85.0 + 30.0 * i / max(n - 1, 1)
        k = math.log(strike / BASE.spot)
        specs.append(
            dataclasses.replace(
                BASE, strike=strike, right=right,
                volatility=0.22 - 0.1 * k + 0.25 * k * k,
            )
        )
    quotes = [r.price for r in price_many(specs, STEPS)]
    return specs, quotes


class TestLockstepAgreement:
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    def test_matches_per_quote_implied_vol(self, right):
        """Lockstep trajectories == independent implied_vol calls, exactly."""
        specs, quotes = build_ladder(6, right)
        serial = [implied_vol(q, s, STEPS) for s, q in zip(specs, quotes)]
        report = implied_vol_many(specs, quotes, STEPS, lockstep=True)
        for a, b in zip(serial, report.results):
            assert b.vol == a.vol
            assert b.solves == a.solves
            assert b.iterations == a.iterations
            assert b.newton == a.newton
            assert not b.warm_start

    def test_rounds_beat_sequential_solves(self):
        """The whole ladder converges in ~per-quote-iteration rounds, far
        fewer pool passes than the total solve count."""
        specs, quotes = build_ladder(8)
        report = implied_vol_many(specs, quotes, STEPS, lockstep=True)
        assert report.meta["lockstep"] is True
        assert 0 < report.meta["rounds"] < report.solves
        assert report.meta["warm_start"] is False

    def test_routes_through_advance_batch(self):
        specs, quotes = build_ladder(6)
        engine = AdvanceEngine()
        implied_vol_many(specs, quotes, STEPS, engine=engine, lockstep=True)
        assert engine.cache_info()["batch_advances"] > 0

    def test_empty_ladder(self):
        report = implied_vol_many([], [], STEPS, lockstep=True)
        assert report.results == [] and report.solves == 0

    def test_single_quote(self):
        specs, quotes = build_ladder(1)
        report = implied_vol_many(specs, quotes, STEPS, lockstep=True)
        ref = implied_vol(quotes[0], specs[0], STEPS)
        assert report.results[0].vol == ref.vol

    def test_bad_quote_rejected_before_any_solve(self):
        specs, quotes = build_ladder(3)
        quotes[1] = specs[1].spot * 2.0  # above the attainable range
        engine = AdvanceEngine()
        with pytest.raises(ValidationError):
            implied_vol_many(
                specs, quotes, STEPS, engine=engine, lockstep=True
            )
        assert engine.cache_info()["advances"] == 0

    def test_serial_path_unchanged_by_flag(self):
        specs, quotes = build_ladder(4)
        default = implied_vol_many(specs, quotes, STEPS)
        explicit = implied_vol_many(specs, quotes, STEPS, lockstep=False)
        assert default.meta["lockstep"] is False
        assert [r.vol for r in default.results] == [
            r.vol for r in explicit.results
        ]
