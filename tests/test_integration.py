"""End-to-end integration tests chaining the full substrate stack.

Each test exercises the pipeline a benchmark uses: instrumented solver run →
runtime model → energy model → cache simulation, verifying the pieces
compose consistently (not just that each works in isolation).
"""

import dataclasses

import pytest

from repro import (
    Right,
    paper_benchmark_spec,
    price_american,
    price_european,
    american_greeks,
)
from repro.cachesim import CacheHierarchy, CacheConfig
from repro.cachesim.trace import trace_fft_tree, trace_loop_bopm
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.experiments.figures import MODEL_KEY, RUNNERS
from repro.lattice import price_binomial
from repro.parallel import RuntimeModel, simulate_brent

SPEC = paper_benchmark_spec()


class TestSolverToRuntimeModel:
    def test_modeled_parallel_time_ordering_preserved(self):
        """At large T the fft solver must win at every modeled p."""
        T = 8192
        fft = RUNNERS["fft-bopm"](T)
        ql = RUNNERS["ql-bopm"](T)
        for p in (1, 8, 48):
            assert simulate_brent(fft.workspan, p) < simulate_brent(ql.workspan, p)

    def test_calibrated_model_roundtrip_through_result(self):
        r = price_american(SPEC, 2048, method="fft")
        model = RuntimeModel.from_measurement(r.workspan, 0.1)
        assert model.predict_seconds(r.workspan, 1) == pytest.approx(0.1)
        assert model.predict_seconds(r.workspan, 48) < 0.1


class TestSolverToEnergy:
    def test_energy_ordering_tracks_work_at_scale(self):
        T = 8192
        fft = RUNNERS["fft-bopm"](T)
        ql = RUNNERS["ql-bopm"](T)
        # equalise runtime so only work/traffic differ: the fft side must win
        e_fft = DEFAULT_ENERGY_MODEL.energy_from_model(
            MODEL_KEY["fft-bopm"], T, fft.workspan, 1.0
        )
        e_ql = DEFAULT_ENERGY_MODEL.energy_from_model(
            MODEL_KEY["ql-bopm"], T, ql.workspan, 1.0
        )
        assert e_fft.total_joules < e_ql.total_joules


class TestSolverToCacheSim:
    def test_boundary_driven_replay_matches_solver_structure(self):
        """The trace replay and the real solver see the same divider, so the
        replay's access volume must be within a small factor of the cells
        the instrumented solver reports touching."""
        T = 512
        boundary = price_binomial(SPEC, T, return_boundary=True).boundary
        trace_cells = sum(len(c) for c in trace_fft_tree(T, boundary, q=1))
        solver = RUNNERS["fft-bopm"](T)
        assert trace_cells > solver.stats.cells_evaluated * 0.5

    def test_fft_trace_beats_loop_trace_through_simulator(self):
        T = 512
        boundary = price_binomial(SPEC, T, return_boundary=True).boundary
        cfg = CacheConfig(size_bytes=2048, line_bytes=64, ways=8)
        cfg2 = CacheConfig(size_bytes=16384, line_bytes=64, ways=16)
        misses = {}
        for name, gen in [
            ("fft", trace_fft_tree(T, boundary, q=1)),
            ("loop", trace_loop_bopm(T)),
        ]:
            h = CacheHierarchy(cfg, cfg2)
            for chunk in gen:
                h.access_elements(chunk)
            misses[name] = h.counters().l1_misses
        assert misses["fft"] < misses["loop"]


class TestFullPricingStack:
    def test_all_three_models_one_contract(self):
        put = dataclasses.replace(SPEC, right=Right.PUT, dividend_yield=0.0)
        b = price_american(put, 1024, model="binomial", method="fft").price
        t = price_american(put, 1024, model="trinomial", method="fft").price
        f = price_american(put, 1024, model="bsm-fd", method="fft").price
        # three independent discretisations of the same contract
        assert b == pytest.approx(t, abs=0.1)
        assert b == pytest.approx(f, abs=0.2)

    def test_greeks_consistent_with_price_curve(self):
        g = american_greeks(SPEC, 512)
        up = price_american(
            dataclasses.replace(SPEC, spot=SPEC.spot * 1.01), 512, method="fft"
        ).price
        predicted = g.price + g.delta * SPEC.spot * 0.01
        assert up == pytest.approx(predicted, abs=0.05)

    def test_european_american_bermudan_ladder(self):
        put = dataclasses.replace(SPEC, right=Right.PUT)
        eu = price_european(put, 256, method="fft").price
        from repro import price_bermudan

        bm = price_bermudan(put, 256, [64, 128, 192], method="fft").price
        am = price_american(put, 256, method="fft").price
        assert eu - 1e-10 <= bm <= am + 1e-10
