"""Canonical-key reduction: invariances, quantization, exact round trips."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.api import price_american, price_european
from repro.options.contract import OptionSpec, Right, Style, paper_benchmark_spec
from repro.service.canonical import (
    EXACT,
    CanonicalPolicy,
    canonical_key,
    canonicalize,
    decanonicalize,
)
from repro.util.validation import ValidationError
from tests.conftest import call_specs

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)


class TestKeyInvariances:
    def test_scale_invariance(self):
        scaled = dataclasses.replace(
            SPEC, spot=SPEC.spot * 3.5, strike=SPEC.strike * 3.5
        )
        assert canonical_key(SPEC, 128) == canonical_key(scaled, 128)

    def test_scale_carries_strike(self):
        req = canonicalize(SPEC, 128)
        assert req.spec.strike == 1.0
        assert req.scale == SPEC.strike
        assert req.spec.spot == SPEC.spot / SPEC.strike

    def test_binomial_put_folds_onto_dual_call(self):
        dual = PUT.symmetric_dual()
        assert dual.right is Right.CALL
        assert canonical_key(PUT, 128) == canonical_key(dual, 128)
        assert canonicalize(PUT, 128).dualized
        assert not canonicalize(dual, 128).dualized

    def test_zero_rate_put_keeps_orientation(self):
        # its dual is a zero-dividend call, which price_american answers
        # from the closed form while the direct put path lattice-solves —
        # folding would break the cache's exactness contract
        import repro.core.api as api

        put0 = dataclasses.replace(PUT, rate=0.0)
        req = canonicalize(put0, 128)
        assert not req.dualized
        assert req.spec.right is Right.PUT
        canonical = api.price_american(
            req.spec, 128, model=req.model, method=req.method, base=req.base
        )
        direct = api.price_american(put0, 128)
        assert canonical.price * req.scale == pytest.approx(
            direct.price, rel=1e-12
        )

    def test_loop_put_keeps_orientation(self):
        # the loop solver prices puts natively and reports the put's own
        # divider; a dual fold would swap in the mirrored dual-call divider
        req = canonicalize(PUT, 128, method="loop")
        assert not req.dualized
        assert req.spec.right is Right.PUT

    def test_default_base_and_explicit_default_share_a_key(self):
        from repro.core.bsm_solver import DEFAULT_BSM_BASE
        from repro.core.tree_solver import DEFAULT_BASE

        assert canonical_key(SPEC, 128) == canonical_key(
            SPEC, 128, base=DEFAULT_BASE
        )
        assert canonical_key(SPEC, 128) != canonical_key(SPEC, 128, base=16)
        put0 = dataclasses.replace(PUT, dividend_yield=0.0)
        assert canonical_key(put0, 128, model="bsm-fd") == canonical_key(
            put0, 128, model="bsm-fd", base=DEFAULT_BSM_BASE
        )

    def test_method_ignored_knobs_erased_from_key(self):
        # loop has no recursion base; tree models have no parabolic ratio
        assert canonical_key(SPEC, 128, method="loop") == canonical_key(
            SPEC, 128, method="loop", base=16
        )
        assert canonical_key(SPEC, 128) == canonical_key(SPEC, 128, lam=0.25)
        # European fft is a single jump with no recursion base either
        euro = SPEC.with_style(Style.EUROPEAN)
        assert canonical_key(euro, 128) == canonical_key(euro, 128, base=16)

    def test_american_trinomial_put_folds(self):
        # the fft solver prices this put through the dual lattice anyway,
        # so the fold changes nothing but the key
        req = canonicalize(PUT, 128, model="trinomial")
        assert req.dualized
        assert canonical_key(PUT, 128, model="trinomial") == canonical_key(
            PUT.symmetric_dual(), 128, model="trinomial"
        )

    def test_european_trinomial_put_keeps_orientation(self):
        # European trinomial puts are priced natively; the dual identity
        # only holds to discretisation order there (~3.8e-10 at T=1024)
        euro_put = PUT.with_style(Style.EUROPEAN)
        req = canonicalize(euro_put, 128, model="trinomial")
        assert not req.dualized
        assert req.spec.right is Right.PUT
        assert canonical_key(euro_put, 128, model="trinomial") != canonical_key(
            PUT.symmetric_dual().with_style(Style.EUROPEAN), 128,
            model="trinomial",
        )

    def test_day_count_folds_away(self):
        quarterly = dataclasses.replace(SPEC, expiry_days=63.0, day_count=63)
        annual = dataclasses.replace(SPEC, expiry_days=252.0, day_count=252)
        assert quarterly.years == annual.years == 1.0
        assert canonical_key(quarterly, 128) == canonical_key(annual, 128)

    @pytest.mark.parametrize(
        "kwargs_a,kwargs_b",
        [
            ({"model": "binomial"}, {"model": "trinomial"}),
            ({"method": "fft"}, {"method": "loop"}),
            ({"base": None}, {"base": 16}),
        ],
    )
    def test_solve_configuration_separates_keys(self, kwargs_a, kwargs_b):
        assert canonical_key(SPEC, 128, **kwargs_a) != canonical_key(
            SPEC, 128, **kwargs_b
        )

    def test_lam_separates_bsm_keys(self, put_spec):
        # lam is a real knob for the FD grid; erased everywhere else
        assert canonical_key(put_spec, 128, model="bsm-fd") != canonical_key(
            put_spec, 128, model="bsm-fd", lam=0.25
        )

    def test_steps_and_style_separate_keys(self):
        assert canonical_key(SPEC, 128) != canonical_key(SPEC, 256)
        euro = SPEC.with_style(Style.EUROPEAN)
        assert canonical_key(SPEC, 128) != canonical_key(euro, 128)

    def test_key_is_hashable_and_matches_request(self):
        key = canonical_key(SPEC, 128)
        assert hash(key)
        assert key == canonicalize(SPEC, 128).key

    def test_bermudan_rejected(self):
        with pytest.raises(ValidationError, match="Bermudan"):
            canonicalize(SPEC.with_style(Style.BERMUDAN), 128)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValidationError):
            canonicalize(SPEC, 128, model="heston")


class TestQuantization:
    def test_exact_policy_keeps_distinct_keys(self):
        near = dataclasses.replace(SPEC, volatility=SPEC.volatility + 1e-9)
        assert canonical_key(SPEC, 128) != canonical_key(near, 128)

    def test_tolerance_merges_nearby_requests(self):
        policy = CanonicalPolicy(tol=1e-4)
        near = dataclasses.replace(
            SPEC,
            volatility=SPEC.volatility + 2e-5,
            rate=SPEC.rate + 2e-5,
            spot=SPEC.spot * (1.0 + 1e-5),
        )
        assert canonical_key(SPEC, 128, policy=policy) == canonical_key(
            near, 128, policy=policy
        )
        assert canonicalize(SPEC, 128, policy=policy).quantized

    def test_tolerance_does_not_merge_beyond_step(self):
        policy = CanonicalPolicy(tol=1e-4)
        far = dataclasses.replace(SPEC, volatility=SPEC.volatility + 5e-3)
        assert canonical_key(SPEC, 128, policy=policy) != canonical_key(
            far, 128, policy=policy
        )

    def test_quantized_spec_stays_valid(self):
        # A volatility below half a step snaps to the first grid point, not 0.
        tiny = dataclasses.replace(SPEC, volatility=1e-6)
        req = canonicalize(tiny, 128, policy=CanonicalPolicy(tol=0.01))
        assert req.spec.volatility == pytest.approx(0.01)
        assert req.spec.rate == 0.0  # 0.00163 snaps down to the 0 grid point

    def test_day_count_renormalisation_is_not_quantization(self):
        # every dimensionless coordinate already sits on the tol grid; only
        # the day-count convention changes, which is exact
        policy = CanonicalPolicy(tol=0.25)
        exact = OptionSpec(
            spot=125.0, strike=100.0, rate=0.25, volatility=0.5,
            dividend_yield=0.0, expiry_days=360.0, day_count=360,
        )
        req = canonicalize(exact, 64, policy=policy)
        assert not req.quantized
        assert req.spec.day_count == 252
        moved = dataclasses.replace(exact, volatility=0.51)
        assert canonicalize(moved, 64, policy=policy).quantized

    def test_negative_tol_rejected(self):
        with pytest.raises(ValidationError):
            CanonicalPolicy(tol=-1.0)


class TestRoundTrip:
    """Pricing the canonical contract and un-scaling matches direct pricing."""

    def _round_trip(self, spec, steps, **kwargs):
        req = canonicalize(spec, steps, **kwargs)
        if req.spec.style is Style.EUROPEAN:
            canonical = price_european(
                req.spec, steps, model=req.model, method=req.method
            )
        else:
            canonical = price_american(
                req.spec, steps, model=req.model, method=req.method,
                base=req.base, lam=req.lam,
            )
        return decanonicalize(canonical, req)

    @given(spec=call_specs(), steps=st.sampled_from([16, 64]))
    def test_property_calls(self, spec, steps):
        direct = price_american(spec, steps).price
        via = self._round_trip(spec, steps).price
        assert abs(via - direct) <= 1e-12 * max(abs(direct), 1e-12)

    @given(spec=call_specs(), steps=st.sampled_from([16, 64]))
    def test_property_puts_via_symmetry(self, spec, steps):
        put = spec.with_right(Right.PUT)
        direct = price_american(put, steps).price
        via = self._round_trip(put, steps).price
        assert abs(via - direct) <= 1e-12 * max(abs(direct), 1e-12)

    @pytest.mark.parametrize("model", ["binomial", "trinomial"])
    @pytest.mark.parametrize("right", [Right.CALL, Right.PUT])
    def test_tree_models_both_rights(self, model, right):
        spec = SPEC.with_right(right)
        direct = price_american(spec, 96, model=model).price
        via = self._round_trip(spec, 96, model=model).price
        assert via == pytest.approx(direct, rel=1e-12)

    def test_bsm_put(self, put_spec):
        direct = price_american(put_spec, 96, model="bsm-fd").price
        via = self._round_trip(put_spec, 96, model="bsm-fd").price
        assert via == pytest.approx(direct, rel=1e-12)

    def test_european_both_rights(self):
        for right in (Right.CALL, Right.PUT):
            spec = SPEC.with_right(right).with_style(Style.EUROPEAN)
            direct = price_european(spec, 96).price
            via = self._round_trip(spec, 96).price
            assert via == pytest.approx(direct, rel=1e-12)


class TestDecanonicalize:
    def test_envelope_passthrough_and_meta(self):
        req = canonicalize(SPEC, 64)
        canonical = price_american(req.spec, 64, return_boundary=True)
        out = decanonicalize(canonical, req)
        assert out.price == canonical.price * req.scale
        assert out.workspan is canonical.workspan
        assert out.stats == canonical.stats
        assert out.boundary == canonical.boundary
        assert out.meta["canonical"]["scale"] == SPEC.strike
        assert out.meta["canonical"]["key"] == req.key
        # annotations land on the copy, never the cached original
        assert "canonical" not in canonical.meta
        # mutable containers are copies: mutating a served result must not
        # corrupt the canonical original a cache would keep serving
        out.stats["fft_calls"] = -1
        out.boundary.clear()
        assert canonical.stats["fft_calls"] != -1
        assert canonical.boundary

    def test_european_baseline_method_rejected_at_submission(self):
        euro = SPEC.with_style(Style.EUROPEAN)
        with pytest.raises(ValidationError, match="European"):
            canonicalize(euro, 64, method="zb")

    def test_put_baseline_method_rejected_at_submission(self):
        with pytest.raises(ValidationError, match="American-call"):
            canonicalize(PUT, 64, method="tiled")

    def test_bsm_call_rejected_at_submission(self):
        with pytest.raises(ValidationError, match="puts"):
            canonicalize(SPEC, 64, model="bsm-fd")

    def test_advance_policy_separates_keys(self):
        from repro.core.fftstencil import AdvancePolicy

        assert canonical_key(SPEC, 128) != canonical_key(
            SPEC, 128, advance_policy=AdvancePolicy(mode="direct")
        )
        # equal policies (by value) share keys, as injected caches expect
        assert canonical_key(
            SPEC, 128, advance_policy=AdvancePolicy()
        ) == canonical_key(SPEC, 128)
