"""Slow-quote exemplars: top-K per outcome, trace + journal slice."""

import dataclasses

import pytest

from repro.obs import Telemetry
from repro.options.contract import paper_benchmark_spec
from repro.resilience import Deadline
from repro.service import QuoteService

SPEC = paper_benchmark_spec()


def strikes(n, lo=100.0, hi=160.0):
    step = (hi - lo) / max(n - 1, 1)
    return [
        dataclasses.replace(SPEC, strike=lo + i * step) for i in range(n)
    ]


class TestCapture:
    def test_exemplars_grouped_by_outcome(self):
        tel = Telemetry()
        svc = QuoteService(telemetry=tel)
        svc.quote(SPEC, 96)  # miss
        svc.quote(SPEC, 96)  # hit
        ex = svc.stats()["exemplars"]
        assert set(ex) == {"hit", "miss"}
        assert [e["outcome"] for e in ex["miss"]] == ["miss"]

    def test_exemplar_carries_trace_and_duration(self):
        svc = QuoteService(telemetry=Telemetry())
        svc.quote(SPEC, 96)
        (ex,) = svc.stats()["exemplars"]["miss"]
        assert ex["duration_s"] > 0.0
        assert ex["trace"]["name"] == "quote"
        children = [c["name"] for c in ex["trace"]["children"]]
        assert children[:2] == ["canonicalize", "cache_lookup"]
        lo, hi = ex["seq_range"]
        assert lo <= hi

    def test_top_k_slowest_retained_per_outcome(self):
        svc = QuoteService(telemetry=Telemetry(), exemplars=2)
        for spec in strikes(5):
            svc.quote(spec, 96)  # five cold misses
        bucket = svc.stats()["exemplars"]["miss"]
        assert len(bucket) == 2
        durs = [e["duration_s"] for e in bucket]
        assert durs == sorted(durs, reverse=True)

    def test_zero_k_disables_capture(self):
        svc = QuoteService(telemetry=Telemetry(), exemplars=0)
        svc.quote(SPEC, 96)
        assert svc.stats()["exemplars"] == {}
        assert svc.explain_slowest() == []

    def test_disabled_telemetry_captures_nothing(self):
        svc = QuoteService(telemetry=Telemetry.disabled())
        svc.quote(SPEC, 96)
        assert "exemplars" not in svc.stats()
        assert svc.explain_slowest() == []


class TestJournalCorrelation:
    def test_stale_exemplar_includes_the_stale_serve_event(self):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        tel = Telemetry()
        svc = QuoteService(
            telemetry=tel, ttl=10.0, stale_grace=60.0, clock=clock,
        )
        svc.quote(SPEC, 96)
        clock.now = 20.0  # expired, inside the grace
        r = svc.quote(SPEC, 96, deadline=Deadline(0.0, clock=clock))
        assert r.meta["cache"] == "stale"
        (ex,) = svc.stats()["exemplars"]["stale"]
        types = [e["type"] for e in ex["journal"]]
        assert "stale_serve" in types
        stale_events = [
            e for e in ex["journal"] if e["type"] == "stale_serve"
        ]
        # the event was emitted inside this quote's span tree
        assert stale_events[0]["span_id"] == ex["trace"]["id"]
        assert stale_events[0]["fields"]["reason"] == "deadline"

    def test_journal_slice_excludes_earlier_traffic(self):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        tel = Telemetry()
        svc = QuoteService(
            telemetry=tel, ttl=10.0, stale_grace=60.0, clock=clock,
            exemplars=1,
        )
        a, b = strikes(2)
        svc.quote(a, 96)
        svc.quote(b, 96)
        clock.now = 20.0
        svc.quote(a, 96, deadline=Deadline(0.0, clock=clock))
        svc.quote(b, 96, deadline=Deadline(0.0, clock=clock))
        (ex,) = svc.stats()["exemplars"]["stale"]
        lo, hi = ex["seq_range"]
        assert all(lo <= e["seq"] < hi for e in ex["journal"])
        # only this quote's events, not the other stale serve's
        assert (
            len([e for e in ex["journal"] if e["type"] == "stale_serve"])
            == 1
        )


class TestExplainSlowest:
    def test_ranks_across_outcomes_slowest_first(self):
        svc = QuoteService(telemetry=Telemetry())
        svc.quote(SPEC, 96)
        svc.quote(SPEC, 96)
        top = svc.explain_slowest(n=2)
        assert len(top) == 2
        assert top[0]["duration_s"] >= top[1]["duration_s"]
        # a cold solve dwarfs a warm lookup
        assert top[0]["outcome"] == "miss"

    def test_outcome_filter(self):
        svc = QuoteService(telemetry=Telemetry())
        svc.quote(SPEC, 96)
        svc.quote(SPEC, 96)
        hits = svc.explain_slowest(outcome="hit", n=5)
        assert [e["outcome"] for e in hits] == ["hit"]
        assert svc.explain_slowest(outcome="stale") == []

    def test_n_validated(self):
        svc = QuoteService(telemetry=Telemetry())
        with pytest.raises(Exception):
            svc.explain_slowest(n=0)
