"""Tiered quotes: fast/exact/auto slots, upgrades, graceful degradation.

The load-bearing invariant is **slot isolation**: the cache key carries
the tier, so a ``tier="fast"`` (spectral, ~1e-3) answer can never be
served from — or upgraded into — an exact lattice slot, under any
:class:`CanonicalPolicy`.  Fast serves are always stamped
``meta["tier"]`` / ``meta["tolerance"]``; the exact slot only warms via
the pending-queue upgrade, which stores the *lattice* solve.
"""

import dataclasses

import pytest

from repro.core.api import price_american
from repro.core.spectral import SPECTRAL_TOL
from repro.obs import Telemetry
from repro.options.contract import (
    OptionSpec, Right, Style, paper_benchmark_spec,
)
from repro.resilience import (
    BreakerPolicy, CircuitOpenError, Deadline, DeadlineExceeded,
)
from repro.service import QuoteService
from repro.service.canonical import CanonicalPolicy
from repro.util.validation import ValidationError

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)
# passes canonicalization, dies in the FD solver (Theorem 4.3 violation)
BAD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0, rate=0.9)
GOOD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0)

AMERICAN_PUT = OptionSpec(
    spot=100.0, strike=100.0, rate=0.04, volatility=0.25,
    dividend_yield=0.02, expiry_days=252.0, right=Right.PUT,
    style=Style.AMERICAN,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_bsm_service(fake_clock, **kw):
    defaults = dict(
        model="bsm-fd",
        breaker=BreakerPolicy(failure_threshold=2, reset_timeout=30.0),
        clock=fake_clock,
    )
    defaults.update(kw)
    return QuoteService(**defaults)


def trip(svc, n=2):
    for _ in range(n):
        with pytest.raises(Exception):
            svc.quote(BAD_BSM_PUT, 8)


def exact_key(svc, spec, steps):
    return svc._canonicalize(spec, steps, None, None, None, None).key


def lattice_ref(spec, steps):
    """The exact-tier answer on a fresh service — the service's canonical
    (dualized, strike-scaled) solve, which an upgraded slot must match
    bit for bit."""
    return QuoteService().quote(spec, steps).price


class TestTierValidation:
    def test_unknown_tier_rejected(self):
        svc = QuoteService()
        with pytest.raises(ValidationError, match="unknown tier"):
            svc.quote(AMERICAN_PUT, 64, tier="turbo")

    def test_fast_tier_has_no_boundary(self):
        svc = QuoteService()
        with pytest.raises(ValidationError, match="divider"):
            svc.quote(AMERICAN_PUT, 64, tier="fast", return_boundary=True)


class TestFastTier:
    def test_fast_serve_is_marked_and_cached_in_its_own_slot(self):
        svc = QuoteService()
        cold = svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert cold.meta["cache"] == "miss"
        assert cold.meta["tier"] == "fast"
        assert cold.meta["tolerance"] == SPECTRAL_TOL
        assert cold.meta["backend"] == "spectral"
        warm = svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert warm.meta["cache"] == "hit"
        assert warm.meta["tier"] == "fast"
        assert warm.price == cold.price

    def test_fast_price_within_stated_tolerance(self):
        svc = QuoteService()
        fast = svc.quote(AMERICAN_PUT, 64, tier="fast")
        exact = price_american(AMERICAN_PUT, 64)
        rel = abs(fast.price - exact.price) / exact.price
        assert rel <= SPECTRAL_TOL * 10  # 64-step lattice is itself coarse

    def test_upgrade_enqueued_once_and_flush_warms_the_exact_slot(self):
        svc = QuoteService()
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert svc.health()["pending"] == 1
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert svc.health()["pending"] == 1  # coalesced, not re-queued
        svc.flush()
        upgraded = svc.quote(AMERICAN_PUT, 64)  # exact tier
        assert upgraded.meta["cache"] == "hit"
        assert upgraded.price == lattice_ref(AMERICAN_PUT, 64)

    def test_counters_in_stats(self):
        svc = QuoteService()
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        service = svc.stats()["service"]
        assert service["fast_quotes"] == 2
        assert service["tier_upgrades"] == 1


class TestSlotIsolation:
    @pytest.mark.parametrize(
        "canonical", [CanonicalPolicy(0.0), CanonicalPolicy(tol=1e-4)],
        ids=["exact-policy", "quantizing-policy"],
    )
    def test_fast_quote_never_warms_the_exact_slot(self, canonical):
        svc = QuoteService(canonical=canonical)
        fast = svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert fast.meta["backend"] == "spectral"
        # the approximate answer landed in the fast slot only
        assert svc.cache.peek(exact_key(svc, AMERICAN_PUT, 64)) is None
        # ...so the exact tier still pays (and stores) the lattice solve
        exact = svc.quote(AMERICAN_PUT, 64)
        assert exact.meta["cache"] != "hit"
        assert exact.meta["backend"] == "lattice"
        assert exact.price == lattice_ref(AMERICAN_PUT, 64)

    @pytest.mark.parametrize(
        "canonical", [CanonicalPolicy(0.0), CanonicalPolicy(tol=1e-4)],
        ids=["exact-policy", "quantizing-policy"],
    )
    def test_exact_hit_never_serves_the_fast_tier(self, canonical):
        svc = QuoteService(canonical=canonical)
        exact = svc.quote(AMERICAN_PUT, 64)
        assert exact.meta["cache"] == "miss"
        fast = svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert fast.meta["cache"] == "miss"  # not served from the exact slot
        assert fast.meta["backend"] == "spectral"
        assert fast.meta["tier"] == "fast"

    def test_quantized_neighbours_share_a_slot_per_tier_only(self):
        # under a quantizing policy two near-identical contracts share one
        # canonical key — the tier prefix must still keep the two slots
        # apart for *both* contracts
        svc = QuoteService(canonical=CanonicalPolicy(tol=1e-4))
        near = dataclasses.replace(
            AMERICAN_PUT, volatility=AMERICAN_PUT.volatility * (1 + 1e-6)
        )
        assert exact_key(svc, AMERICAN_PUT, 64) == exact_key(svc, near, 64)
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        assert svc.quote(near, 64, tier="fast").meta["cache"] == "hit"
        exact = svc.quote(near, 64)
        assert exact.meta["cache"] != "hit"
        assert exact.meta["backend"] == "lattice"

    def test_upgraded_slot_holds_the_lattice_answer(self):
        svc = QuoteService()
        fast = svc.quote(AMERICAN_PUT, 64, tier="fast")
        svc.flush()
        stored = svc.cache.peek(exact_key(svc, AMERICAN_PUT, 64))
        assert stored is not None
        assert stored.meta["backend"] == "lattice"
        assert stored.price != fast.price  # approximation never promoted


class TestAutoTier:
    def test_cold_auto_serves_fast_and_queues_the_upgrade(self):
        svc = QuoteService()
        first = svc.quote(AMERICAN_PUT, 64, tier="auto")
        assert first.meta["tier"] == "fast"
        assert first.meta["tolerance"] == SPECTRAL_TOL
        assert svc.health()["pending"] == 1

    def test_auto_after_flush_serves_exact(self):
        svc = QuoteService()
        fast = svc.quote(AMERICAN_PUT, 64, tier="auto")
        svc.flush()
        upgraded = svc.quote(AMERICAN_PUT, 64, tier="auto")
        assert upgraded.meta["cache"] == "hit"
        assert upgraded.meta["tier"] == "exact"
        assert upgraded.meta["tolerance"] == 0.0
        assert upgraded.price == lattice_ref(AMERICAN_PUT, 64)
        assert upgraded.price != fast.price

    def test_auto_with_boundary_takes_the_exact_path(self):
        svc = QuoteService()
        result = svc.quote(
            AMERICAN_PUT, 64, tier="auto", return_boundary=True
        )
        assert result.boundary is not None
        assert "tier" not in result.meta or result.meta["tier"] != "fast"


class TestDegradation:
    def test_fallback_off_keeps_the_breaker_rejection(self):
        clock = FakeClock()
        svc = make_bsm_service(clock)
        trip(svc)
        with pytest.raises(CircuitOpenError):
            svc.quote(GOOD_BSM_PUT, 8)

    def test_fallback_off_keeps_the_deadline_rejection(self):
        svc = QuoteService()
        with pytest.raises(DeadlineExceeded):
            svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))

    def test_breaker_open_degrades_to_marked_spectral(self):
        clock = FakeClock()
        svc = make_bsm_service(clock, spectral_fallback=True)
        trip(svc)
        result = svc.quote(GOOD_BSM_PUT, 8)
        assert result.meta["cache"] == "degraded"
        assert result.meta["degraded_to"] == "spectral"
        assert result.meta["degrade_reason"] == "breaker_open"
        assert result.meta["tier"] == "fast"
        assert result.meta["tolerance"] == SPECTRAL_TOL
        assert svc.stats()["resilience"]["degraded_spectral"] == 1

    def test_spent_deadline_degrades_to_marked_spectral(self):
        svc = QuoteService(spectral_fallback=True)
        result = svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))
        assert result.meta["degraded_to"] == "spectral"
        assert result.meta["degrade_reason"] == "deadline"

    def test_degraded_serve_is_never_cached_anywhere(self):
        svc = QuoteService(spectral_fallback=True)
        svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))
        assert svc.cache.peek(exact_key(svc, AMERICAN_PUT, 64)) is None
        assert svc.cache.stats()["size"] == 0
        # the second degraded quote solves again — still not a cache hit
        again = svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))
        assert again.meta["cache"] == "degraded"

    def test_degraded_serve_enqueues_the_healing_refresh(self):
        svc = QuoteService(spectral_fallback=True)
        svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))
        assert svc.health()["pending"] == 1
        svc.flush()
        healed = svc.quote(AMERICAN_PUT, 64)
        assert healed.meta["cache"] == "hit"
        assert healed.meta["backend"] == "lattice"

    def test_stale_serve_outranks_the_spectral_fallback(self):
        clock = FakeClock()
        svc = make_bsm_service(
            clock, spectral_fallback=True, ttl=10.0, stale_grace=100.0,
        )
        warm = svc.quote(GOOD_BSM_PUT, 8)
        clock.advance(11.0)  # expired, within grace
        trip(svc)
        result = svc.quote(GOOD_BSM_PUT, 8)
        assert result.meta["cache"] == "stale"
        assert "degraded_to" not in result.meta
        assert result.price == warm.price

    def test_spectral_rejection_restores_the_original_error(self):
        # when the spectral backend itself rejects the contract, the
        # fallback bows out and the deadline rejection stands
        svc = QuoteService(spectral_fallback=True)

        class Rejecting:
            tolerance = SPECTRAL_TOL

            def price_spec(self, *args, **kwargs):
                raise ValidationError("no spectral answer")

        svc._spectral_backend = Rejecting()
        with pytest.raises(DeadlineExceeded):
            svc.quote(AMERICAN_PUT, 64, deadline=Deadline(0.0))


class TestHealthAndTelemetry:
    def test_health_reports_breakers_degrades_and_journal_drops(self):
        clock = FakeClock()
        tel = Telemetry(journal_size=2)
        svc = make_bsm_service(clock, spectral_fallback=True, telemetry=tel)
        trip(svc)
        svc.quote(GOOD_BSM_PUT, 8)  # degraded spectral serve
        for i in range(4):  # overflow the 2-event flight-recorder ring
            tel.emit("noise", i=i)
        h = svc.health()
        assert h["open_breakers"] == ["bsm-fd/fft/8"]
        assert h["degraded_spectral"] == 1
        assert h["journal_dropped"] == tel.journal.dropped > 0

    def test_health_without_telemetry_reports_zero_drops(self):
        svc = QuoteService()
        assert svc.health()["journal_dropped"] == 0

    def test_tier_histogram_only_appears_for_tiered_traffic(self):
        tel = Telemetry()
        svc = QuoteService(telemetry=tel)
        svc.quote(AMERICAN_PUT, 64)  # exact-only traffic
        names = {m["name"] for m in tel.snapshot()["metrics"]}
        assert "service_quote_tier_seconds" not in names
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        tiers = {
            m["labels"]["tier"]
            for m in tel.snapshot()["metrics"]
            if m["name"] == "service_quote_tier_seconds"
        }
        assert tiers == {"fast"}

    def test_journal_records_upgrade_and_degradation_events(self):
        tel = Telemetry()
        svc = QuoteService(spectral_fallback=True, telemetry=tel)
        svc.quote(AMERICAN_PUT, 64, tier="fast")
        svc.quote(AMERICAN_PUT, 128, deadline=Deadline(0.0))
        events = {e["type"] for e in tel.journal.slice(0)}
        assert "tier_upgrade" in events
        assert "degraded_spectral" in events
        degraded = [
            e for e in tel.journal.slice(0)
            if e["type"] == "degraded_spectral"
        ]
        assert degraded[0]["fields"]["reason"] == "deadline"
        assert "binomial" in degraded[0]["fields"]["bucket"]
