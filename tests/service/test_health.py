"""QuoteService.health(): status boundary transitions on a fake clock.

``status`` ladder: ``ok`` → ``degraded`` (any bucket breaker not closed)
→ ``overloaded`` (pending queue full), and back to ``ok`` when the
breaker closes / the queue drains.  Each boundary is pinned from both
sides so a probe can rely on the exact transition points.
"""

import dataclasses

import numpy as np
import pytest

from repro.options.contract import Right, paper_benchmark_spec
from repro.resilience import BreakerPolicy
from repro.service import QuoteService

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)
# passes canonicalization, dies in the FD solver (Theorem 4.3 violation)
BAD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0, rate=0.9)
GOOD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def fake_clock():
    return FakeClock()


def strikes(n, lo=100.0, hi=160.0):
    return [
        dataclasses.replace(SPEC, strike=k) for k in np.linspace(lo, hi, n)
    ]


def make_service(fake_clock, **kw):
    defaults = dict(
        model="bsm-fd",
        breaker=BreakerPolicy(failure_threshold=2, reset_timeout=30.0),
        clock=fake_clock,
    )
    defaults.update(kw)
    return QuoteService(**defaults)


def trip(svc, n=2):
    for _ in range(n):
        with pytest.raises(Exception):
            svc.quote(BAD_BSM_PUT, 8)


class TestOkToDegraded:
    def test_fresh_service_is_ok(self, fake_clock):
        h = make_service(fake_clock).health()
        assert h["status"] == "ok"
        assert h["open_breakers"] == []
        assert h["pending"] == 0

    def test_failures_below_threshold_stay_ok(self, fake_clock):
        svc = make_service(fake_clock)
        trip(svc, n=1)  # threshold is 2 — one failure keeps it closed
        assert svc.health()["status"] == "ok"

    def test_threshold_failure_flips_to_degraded(self, fake_clock):
        svc = make_service(fake_clock)
        trip(svc, n=2)
        h = svc.health()
        assert h["status"] == "degraded"
        assert h["open_breakers"] == ["bsm-fd/fft/8"]

    def test_half_open_is_still_degraded(self, fake_clock):
        svc = make_service(fake_clock)
        trip(svc)
        fake_clock.advance(30.0)  # reset timeout elapsed, probe not yet run
        assert svc.health()["status"] == "degraded"


class TestDegradedRecovery:
    def test_successful_probe_closes_and_returns_ok(self, fake_clock):
        svc = make_service(fake_clock)
        trip(svc)
        assert svc.health()["status"] == "degraded"
        fake_clock.advance(30.0)
        svc.quote(GOOD_BSM_PUT, 8)  # half-open probe succeeds → closed
        h = svc.health()
        assert h["status"] == "ok"
        assert h["open_breakers"] == []

    def test_failed_probe_stays_degraded(self, fake_clock):
        svc = make_service(fake_clock)
        trip(svc)
        fake_clock.advance(30.0)
        with pytest.raises(Exception):
            svc.quote(BAD_BSM_PUT, 8)  # probe fails → re-open
        assert svc.health()["status"] == "degraded"


class TestOverloaded:
    def test_queue_below_bound_is_ok(self, fake_clock):
        svc = QuoteService(max_pending=2, clock=fake_clock)
        svc.submit(SPEC, 96, block=False)
        h = svc.health()
        assert h["status"] == "ok"
        assert h["pending"] == 1

    def test_full_queue_flips_to_overloaded(self, fake_clock):
        svc = QuoteService(max_pending=2, clock=fake_clock)
        for spec in strikes(2):
            svc.submit(spec, 96, block=False)
        h = svc.health()
        assert h["status"] == "overloaded"
        assert h["pending"] == 2 and h["max_pending"] == 2

    def test_overloaded_outranks_degraded(self, fake_clock):
        svc = make_service(fake_clock, max_pending=2)
        trip(svc)
        # bsm-fd prices American puts only — queue put contracts
        for k in (100.0, 110.0):
            svc.submit(
                dataclasses.replace(GOOD_BSM_PUT, strike=k), 96,
                block=False,
            )
        assert svc.health()["status"] == "overloaded"

    def test_flush_drains_back_to_ok(self, fake_clock):
        svc = QuoteService(max_pending=2, clock=fake_clock)
        tickets = [svc.submit(s, 96, block=False) for s in strikes(2)]
        assert svc.health()["status"] == "overloaded"
        svc.flush()
        h = svc.health()
        assert h["status"] == "ok"
        assert h["pending"] == 0
        assert all(t.done() for t in tickets)
