"""QuoteService: hit/miss semantics, coalescer ordering, backpressure."""

import dataclasses
import threading

import numpy as np
import pytest

from repro.core.api import price_american, price_european, price_many
from repro.options.contract import Right, Style, paper_benchmark_spec
from repro.service import (
    CanonicalPolicy,
    QuoteCache,
    QuoteService,
    ServiceOverloadedError,
)
from repro.util.validation import ValidationError
from tests.service.test_quote_cache import FakeClock

SPEC = paper_benchmark_spec()
PUT = SPEC.with_right(Right.PUT)
# a put whose explicit-scheme coefficients violate Theorem 4.3 at small
# step counts — passes canonicalize (only the FD solver can reject it)
# but fails at solve time
BAD_BSM_PUT = dataclasses.replace(PUT, dividend_yield=0.0, rate=0.9)


def strikes(n, lo=100.0, hi=160.0):
    return [
        dataclasses.replace(SPEC, strike=k) for k in np.linspace(lo, hi, n)
    ]


class TestQuote:
    def test_miss_then_hit_bitwise_identical(self):
        svc = QuoteService()
        cold = svc.quote(SPEC, 128)
        warm = svc.quote(SPEC, 128)
        assert cold.meta["cache"] == "miss"
        assert warm.meta["cache"] == "hit"
        assert warm.price == cold.price  # bit-identical at tolerance 0
        stats = svc.stats()["service"]
        assert stats["quotes"] == 2 and stats["solves"] == 1

    def test_agrees_with_direct_pricing(self):
        svc = QuoteService()
        for spec in (SPEC, PUT, SPEC.with_style(Style.EUROPEAN)):
            direct = (
                price_european(spec, 96)
                if spec.style is Style.EUROPEAN
                else price_american(spec, 96)
            ).price
            assert svc.quote(spec, 96).price == pytest.approx(direct, rel=1e-12)

    def test_scaled_clone_is_a_hit(self):
        svc = QuoteService()
        svc.quote(SPEC, 96)
        clone = dataclasses.replace(
            SPEC, spot=SPEC.spot * 2.0, strike=SPEC.strike * 2.0
        )
        r = svc.quote(clone, 96)
        assert r.meta["cache"] == "hit"
        assert r.price == pytest.approx(
            2.0 * price_american(SPEC, 96).price, rel=1e-12
        )

    def test_steps_default(self):
        svc = QuoteService(steps_default=64)
        assert svc.quote(SPEC).steps == 64
        with pytest.raises(ValidationError, match="steps"):
            QuoteService().quote(SPEC)

    def test_quantized_service_merges_nearby_requests(self):
        svc = QuoteService(canonical=CanonicalPolicy(tol=1e-4))
        svc.quote(SPEC, 96)
        near = dataclasses.replace(SPEC, volatility=SPEC.volatility + 1e-5)
        r = svc.quote(near, 96)
        assert r.meta["cache"] == "hit"
        assert r.meta["canonical"]["quantized"]
        direct = price_american(near, 96).price
        assert r.price == pytest.approx(direct, rel=1e-2)

    def test_ttl_expiry_resolves(self):
        clock = FakeClock()
        svc = QuoteService(ttl=30.0, clock=clock)
        svc.quote(SPEC, 96)
        clock.advance(29.0)
        assert svc.quote(SPEC, 96).meta["cache"] == "hit"
        clock.advance(1.0)
        assert svc.quote(SPEC, 96).meta["cache"] == "miss"
        assert svc.stats()["cache"]["expirations"] == 1

    def test_boundary_upgrade(self):
        svc = QuoteService()
        plain = svc.quote(SPEC, 96)
        assert plain.boundary is None
        upgraded = svc.quote(SPEC, 96, return_boundary=True)
        assert upgraded.meta["cache"] == "miss"
        assert upgraded.boundary is not None
        warm = svc.quote(SPEC, 96, return_boundary=True)
        assert warm.meta["cache"] == "hit"
        assert warm.boundary == upgraded.boundary
        assert svc.stats()["service"]["boundary_upgrades"] == 1

    def test_loop_put_boundary_matches_direct(self):
        # loop puts are not dual-folded, so the served divider is the put's
        # own dense boundary exactly as price_american reports it
        svc = QuoteService(method="loop")
        served = svc.quote(PUT, 64, return_boundary=True)
        direct = price_american(PUT, 64, method="loop", return_boundary=True)
        assert np.array_equal(served.boundary, direct.boundary)
        assert served.price == pytest.approx(direct.price, rel=1e-12)

    def test_european_boundary_request_stays_warm(self):
        # Europeans have no divider; the flag must not defeat the cache.
        svc = QuoteService()
        euro = SPEC.with_style(Style.EUROPEAN)
        svc.quote(euro, 96, return_boundary=True)
        warm = svc.quote(euro, 96, return_boundary=True)
        assert warm.meta["cache"] == "hit"
        assert warm.boundary is None
        stats = svc.stats()["service"]
        assert stats["solves"] == 1 and stats["boundary_upgrades"] == 0


class TestQuoteMany:
    def test_submission_order_and_merge_tags(self):
        svc = QuoteService()
        specs = strikes(4)
        batch = [specs[0], specs[1], specs[0], specs[2], specs[1], specs[3]]
        results = svc.quote_many(batch, 96)
        assert [r.meta["cache"] for r in results] == [
            "miss", "miss", "merged", "miss", "merged", "miss",
        ]
        for spec, r in zip(batch, results):
            assert r.price == pytest.approx(
                price_american(spec, 96).price, rel=1e-12
            )
        stats = svc.stats()["service"]
        assert stats["solves"] == 4
        assert stats["merged_requests"] == 2
        assert stats["batches"] == 1 and stats["max_batch"] == 4

    def test_warm_batch_is_all_hits(self):
        svc = QuoteService()
        specs = strikes(3)
        svc.quote_many(specs, 96)
        again = svc.quote_many(list(reversed(specs)), 96)
        assert all(r.meta["cache"] == "hit" for r in again)

    def test_matches_price_many(self):
        svc = QuoteService()
        specs = strikes(3) + [PUT, SPEC.with_style(Style.EUROPEAN)]
        direct = price_many(specs, 96)
        served = svc.quote_many(specs, 96)
        for d, s in zip(direct, served):
            assert s.price == pytest.approx(d.price, rel=1e-12)

    def test_mixed_style_batch_respects_per_key_base(self):
        # canonicalization erases base for Europeans but keeps it for
        # Americans, so one call can span two solve configurations; the
        # American must be solved (and cached) with its own base, not the
        # European's erased one
        euro = SPEC.with_style(Style.EUROPEAN)
        svc = QuoteService()
        batch = svc.quote_many([euro, SPEC], 96, base=16)
        reference = QuoteService().quote(SPEC, 96, base=16)
        assert batch[1].price == reference.price  # bit-identical contract
        warm = svc.quote(SPEC, 96, base=16)
        assert warm.meta["cache"] == "hit"
        assert warm.price == reference.price

    def test_coalesce_off_adoption_solves_individually(self):
        svc = QuoteService(coalesce=False)
        a, b = strikes(2)
        svc.submit(a, 96)
        svc.submit(b, 96)
        svc.quote_many([a, b], 96)
        stats = svc.stats()["service"]
        assert stats["solves"] == 2 and stats["batches"] == 0

    def test_coalesce_off_solves_individually(self):
        svc = QuoteService(coalesce=False)
        results = svc.quote_many(strikes(3), 96)
        assert len(results) == 3
        stats = svc.stats()["service"]
        assert stats["solves"] == 3 and stats["batches"] == 0

    def test_empty(self):
        assert QuoteService().quote_many([], 96) == []

    def test_workers_delegates_to_scenario_engine(self):
        # serial backend keeps the test deterministic on any host while
        # still exercising the ScenarioEngine delegation path.
        svc = QuoteService(workers=2, backend="serial", workers_min_batch=2)
        specs = strikes(5) + [PUT]
        served = svc.quote_many(specs, 96)
        direct = price_many(specs, 96)
        for d, s in zip(direct, served):
            assert s.price == pytest.approx(d.price, rel=1e-12)
        assert svc.stats()["service"]["batches"] == 1


class TestSubmitFlush:
    def test_inflight_dedup_single_solve(self):
        svc = QuoteService()
        tickets = [svc.submit(SPEC, 96) for _ in range(3)]
        assert svc.pending == 1
        assert svc.flush() == 1
        prices = {t.result().price for t in tickets}
        assert len(prices) == 1
        stats = svc.stats()["service"]
        assert stats["solves"] == 1
        assert stats["merged_requests"] == 2
        assert [t.result().meta["cache"] for t in tickets] == [
            "miss", "merged", "merged",
        ]

    def test_coalescer_resolves_in_submission_order(self):
        svc = QuoteService()
        specs = strikes(6)
        tickets = [svc.submit(s, 96) for s in specs]
        assert svc.pending == 6
        assert svc.flush() == 6
        for spec, t in zip(specs, tickets):
            assert t.done()
            assert t.result().price == pytest.approx(
                price_american(spec, 96).price, rel=1e-12
            )
        stats = svc.stats()["service"]
        assert stats["batches"] == 1 and stats["max_batch"] == 6

    def test_buckets_by_steps(self):
        svc = QuoteService()
        t64 = [svc.submit(s, 64) for s in strikes(2)]
        t128 = [svc.submit(s, 128) for s in strikes(2)]
        svc.flush()
        assert {t.result().steps for t in t64} == {64}
        assert {t.result().steps for t in t128} == {128}
        assert svc.stats()["service"]["batches"] == 2

    def test_submit_warm_key_resolves_immediately(self):
        svc = QuoteService()
        svc.quote(SPEC, 96)
        ticket = svc.submit(SPEC, 96)
        assert ticket.done()
        assert ticket.result().meta["cache"] == "hit"
        assert svc.pending == 0

    def test_ticket_result_autoflushes(self):
        svc = QuoteService()
        ticket = svc.submit(SPEC, 96)
        assert not ticket.done()
        assert ticket.result().price == pytest.approx(
            price_american(SPEC, 96).price, rel=1e-12
        )
        assert svc.pending == 0

    def test_backpressure_nonblocking_raises(self):
        svc = QuoteService(max_pending=2)
        svc.submit(strikes(3)[0], 96, block=False)
        svc.submit(strikes(3)[1], 96, block=False)
        with pytest.raises(ServiceOverloadedError):
            svc.submit(strikes(3)[2], 96, block=False)
        assert svc.stats()["service"]["overloads"] == 1

    def test_backpressure_blocking_drains(self):
        svc = QuoteService(max_pending=1)
        specs = strikes(3)
        tickets = [svc.submit(s, 96) for s in specs]
        assert svc.pending == 1  # first two were drained by backpressure
        svc.flush()
        for spec, t in zip(specs, tickets):
            assert t.result().price == pytest.approx(
                price_american(spec, 96).price, rel=1e-12
            )
        assert svc.stats()["service"]["overloads"] == 2

    def test_flush_empty_queue(self):
        assert QuoteService().flush() == 0

    def test_blocking_submit_survives_failing_drain(self):
        svc = QuoteService(model="bsm-fd", max_pending=1)
        bad = svc.submit(BAD_BSM_PUT, 8)  # fails only inside the solver
        good_spec = dataclasses.replace(PUT, dividend_yield=0.0)
        # the forced drain hits the bad bucket's error; this submit must
        # survive it and still enqueue its own request
        good = svc.submit(good_spec, 128, block=True)
        assert svc.pending == 1
        with pytest.raises(ValidationError):
            bad.result()
        assert good.result().price > 0.0

    def test_boundary_upgrade_probe_not_counted_as_hit(self):
        svc = QuoteService()
        svc.quote(SPEC, 96)  # plain entry, no divider (one real miss)
        svc.quote(SPEC, 96, return_boundary=True)  # upgrade probe + re-solve
        assert svc.stats()["cache"]["hits"] == 0
        assert svc.stats()["cache"]["misses"] == 1  # probe is counter-neutral
        warm = svc.quote(SPEC, 96, return_boundary=True)
        assert warm.meta["cache"] == "hit"
        assert svc.stats()["cache"]["hits"] == 1

    def test_cold_boundary_quote_counts_a_miss(self):
        svc = QuoteService()
        svc.quote(SPEC, 96, return_boundary=True)
        stats = svc.stats()["cache"]
        assert stats["misses"] == 1 and stats["hits"] == 0

    def test_solve_error_propagates_to_tickets(self):
        svc = QuoteService(model="bsm-fd")
        # different steps -> different buckets: the bad solve must not
        # poison the good one, and both tickets must resolve
        good = svc.submit(dataclasses.replace(PUT, dividend_yield=0.0), 96)
        bad = svc.submit(BAD_BSM_PUT, 8)  # fails only inside the solver
        with pytest.raises(ValidationError):
            svc.flush()
        assert good.result().price > 0.0
        with pytest.raises(ValidationError):
            bad.result()
        assert svc.pending == 0

    def test_ticket_result_unaffected_by_other_buckets_error(self):
        svc = QuoteService(model="bsm-fd")
        good = svc.submit(dataclasses.replace(PUT, dividend_yield=0.0), 96)
        bad = svc.submit(BAD_BSM_PUT, 8)  # separate bucket; must fail alone
        # result() flushes internally; the bad bucket's error belongs to
        # the bad ticket, never to this one
        assert good.result().price > 0.0
        with pytest.raises(ValidationError):
            bad.result()

    def test_quote_rides_inflight_submit(self):
        svc = QuoteService()
        ticket = svc.submit(SPEC, 96)
        served = svc.quote(SPEC, 96)  # must not double-solve the key
        assert served.meta["cache"] == "merged"
        assert ticket.result().price == served.price
        assert svc.stats()["service"]["solves"] == 1
        assert svc.stats()["service"]["merged_requests"] == 1

    def test_quote_many_adopts_overlapping_submits(self):
        svc = QuoteService()
        specs = strikes(3)
        ticket = svc.submit(specs[0], 96)
        results = svc.quote_many(specs, 96)
        assert svc.pending == 0
        assert svc.stats()["service"]["solves"] == 3  # no double solve
        assert ticket.done()  # the adopted pending resolved this ticket
        # the adopted solve is a merge with the queued submit, not a cache
        # hit — the hit ratio keeps meaning "served from cache", and the
        # adopted key's lookup still counts its miss like any other merge
        assert [r.meta["cache"] for r in results] == ["merged", "miss", "miss"]
        assert svc.stats()["cache"]["hits"] == 0
        # 4 counted misses: the submit's own lookup plus this call's three
        assert svc.stats()["cache"]["misses"] == 4
        for spec, r in zip(specs, results):
            assert r.price == pytest.approx(
                price_american(spec, 96).price, rel=1e-12
            )

    def test_quote_does_not_drain_unrelated_pendings(self):
        svc = QuoteService()
        a, b, c = strikes(3)
        svc.submit(a, 96)
        svc.submit(b, 96)
        svc.submit(c, 96)
        served = svc.quote(c, 96)  # claims only its own key
        assert served.meta["cache"] == "merged"
        assert svc.pending == 2  # a and b still queued, unpaid for
        assert svc.stats()["service"]["solves"] == 1

    def test_submit_rejects_invalid_style_method_combo(self):
        svc = QuoteService()
        euro = SPEC.with_style(Style.EUROPEAN)
        with pytest.raises(ValidationError, match="European"):
            svc.submit(euro, 96, method="zb")
        assert svc.pending == 0

    def test_served_boundary_mutation_does_not_corrupt_cache(self):
        svc = QuoteService()
        first = svc.quote(SPEC, 96, return_boundary=True)
        assert first.boundary
        first.boundary.clear()
        first.stats["fft_calls"] = -1
        warm = svc.quote(SPEC, 96, return_boundary=True)
        assert warm.meta["cache"] == "hit"
        assert warm.boundary  # the cached divider survived the mutation
        assert warm.stats["fft_calls"] != -1

    def test_bucket_isolates_poisoned_member(self):
        svc = QuoteService(model="bsm-fd")
        good_spec = dataclasses.replace(PUT, dividend_yield=0.0)
        rider = svc.submit(good_spec, 8)
        bad = svc.submit(BAD_BSM_PUT, 8)  # same bucket as the rider
        with pytest.raises(ValidationError):
            svc.flush()
        # the poisoned request must not starve its valid bucket sibling
        assert rider.result().price > 0.0
        with pytest.raises(ValidationError):
            bad.result()
        assert svc.pending == 0

    def test_invalid_combos_rejected_at_submission(self):
        with pytest.raises(ValidationError, match="American-call"):
            QuoteService(method="zb").submit(PUT, 96)
        with pytest.raises(ValidationError, match="puts"):
            QuoteService(model="bsm-fd").submit(SPEC, 96)

    def test_boundary_quote_claims_pending_submit(self):
        svc = QuoteService()
        ticket = svc.submit(SPEC, 96)
        served = svc.quote(SPEC, 96, return_boundary=True)
        assert served.boundary
        # one divider-recording solve served both; nothing left to flush
        assert svc.pending == 0
        assert svc.stats()["service"]["solves"] == 1
        assert ticket.result().price == served.price
        warm = svc.quote(SPEC, 96, return_boundary=True)
        assert warm.meta["cache"] == "hit" and warm.boundary


class TestConcurrency:
    def _gated_service(self, monkeypatch):
        """A service whose solves block until the test releases the gate."""
        import repro.service.service as svc_mod

        entered, gate = threading.Event(), threading.Event()
        real = svc_mod.price_many

        def gated(*args, **kwargs):
            entered.set()
            assert gate.wait(10)
            return real(*args, **kwargs)

        monkeypatch.setattr(svc_mod, "price_many", gated)
        return QuoteService(), entered, gate

    def test_concurrent_cold_quotes_merge(self, monkeypatch):
        svc, entered, gate = self._gated_service(monkeypatch)
        out = {}
        t1 = threading.Thread(target=lambda: out.update(a=svc.quote(SPEC, 64)))
        t1.start()
        assert entered.wait(10)  # t1 registered its solve in-flight
        t2 = threading.Thread(target=lambda: out.update(b=svc.quote(SPEC, 64)))
        t2.start()
        gate.set()
        t1.join(10), t2.join(10)
        assert out["a"].price == out["b"].price
        assert svc.stats()["service"]["solves"] == 1  # merged, not re-solved
        tags = {out["a"].meta["cache"], out["b"].meta["cache"]}
        assert tags <= {"miss", "merged", "hit"} and "miss" in tags

    def test_submit_merges_onto_inflight_quote_many_solve(self, monkeypatch):
        svc, entered, gate = self._gated_service(monkeypatch)
        out = {}
        t = threading.Thread(
            target=lambda: out.update(r=svc.quote_many([SPEC], 64))
        )
        t.start()
        assert entered.wait(10)  # quote_many registered its solve in-flight
        ticket = svc.submit(SPEC, 64)  # must merge, not enqueue a new solve
        assert svc.pending == 0
        gate.set()
        t.join(10)
        assert ticket.done()
        assert len(svc._inflight) == 0
        assert svc.stats()["service"]["solves"] == 1
        assert ticket.result().price == out["r"][0].price

    def test_drop_inflight_is_identity_checked(self):
        # a blind pop-by-key would evict a concurrent submit's live pending
        from repro.service.canonical import canonicalize
        from repro.service.service import _Pending

        svc = QuoteService()
        req = canonicalize(SPEC, 64)
        mine, other = _Pending(req), _Pending(req)
        svc._inflight[req.key] = other
        svc._drop_inflight(mine)  # not registered: must be a no-op
        assert svc._inflight[req.key] is other
        svc._drop_inflight(other)
        assert req.key not in svc._inflight


class TestStats:
    def test_snapshot_shape(self):
        svc = QuoteService()
        svc.quote(SPEC, 64)
        stats = svc.stats()
        assert set(stats) == {"cache", "service", "resilience"}
        assert stats["cache"]["stores"] == 1
        for key in (
            "quotes", "solves", "batches", "batched_requests", "max_batch",
            "merged_requests", "boundary_upgrades", "overloads", "pending",
            "max_pending", "workers", "backend", "coalesce",
        ):
            assert key in stats["service"]

    def test_injected_cache(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        svc = QuoteService(cache=cache)
        for spec in strikes(3):
            svc.quote(spec, 64)
        assert svc.stats()["cache"]["evictions"] == 1

    def test_adopted_key_served_from_shared_cache(self):
        # another service sharing the cache can solve a key after this one
        # queued it; the adoption must then serve the warm result and
        # resolve the queued ticket without any solve
        cache = QuoteCache(clock=FakeClock())
        a = QuoteService(cache=cache)
        b = QuoteService(cache=cache)
        ticket = b.submit(SPEC, 96)
        a.quote(SPEC, 96)
        res = b.quote_many([SPEC], 96)
        assert res[0].meta["cache"] == "hit"
        assert b.stats()["service"]["solves"] == 0
        assert ticket.done()
        assert ticket.result().price == res[0].price
        assert b.pending == 0


@pytest.mark.slow
class TestZipfStress:
    """Opt-in (-m slow): a Zipf-distributed stream against a small cache."""

    def test_stream_correct_under_eviction_pressure(self):
        rng = np.random.default_rng(7)
        population = [
            dataclasses.replace(
                SPEC,
                strike=float(k),
                right=Right.PUT if i % 3 == 0 else Right.CALL,
            )
            for i, k in enumerate(np.linspace(90.0, 170.0, 50))
        ]
        svc = QuoteService(cache_size=16)  # forces evictions mid-stream
        ranks = (rng.zipf(1.3, size=500) - 1) % len(population)
        reference = {}
        for r in ranks:
            spec = population[r]
            served = svc.quote(spec, 64)
            if r not in reference:
                reference[r] = price_american(spec, 64).price
            assert served.price == pytest.approx(reference[r], rel=1e-12)
        stats = svc.stats()
        assert stats["cache"]["evictions"] > 0
        assert stats["cache"]["hit_ratio"] > 0.5
        assert stats["service"]["solves"] < len(ranks)
