"""QuoteCache: LRU order, TTL determinism (injected clock), counters."""

import pytest

from repro.core.api import PricingResult
from repro.service.cache import QuoteCache
from repro.util.validation import ValidationError


class FakeClock:
    """Deterministic injectable clock — no wall-clock reads in these tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def result(price: float) -> PricingResult:
    return PricingResult(price=price, steps=8, model="binomial", method="fft")


class TestLRU:
    def test_eviction_order_is_insertion_when_untouched(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.put("a", result(1.0))
        cache.put("b", result(2.0))
        cache.put("c", result(3.0))
        assert cache.get("a") is None  # evicted first
        assert cache.get("b").price == 2.0
        assert cache.get("c").price == 3.0
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.put("a", result(1.0))
        cache.put("b", result(2.0))
        assert cache.get("a").price == 1.0  # a is now most recent
        cache.put("c", result(3.0))
        assert cache.get("b") is None  # b was the LRU entry
        assert cache.get("a").price == 1.0

    def test_put_never_drops_a_recorded_divider(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        rich = result(1.0)
        rich.boundary = {3: 1}
        cache.put("a", rich)
        cache.put("a", result(1.0))  # divider-less refresh of the same key
        assert cache.get("a").boundary == {3: 1}
        richer = result(1.0)
        richer.boundary = {5: 2}
        cache.put("a", richer)  # divider-bearing replacements do win
        assert cache.get("a").boundary == {5: 2}

    def test_put_refresh_updates_value_without_growth(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.put("a", result(1.0))
        cache.put("a", result(10.0))
        assert len(cache) == 1
        assert cache.get("a").price == 10.0
        assert cache.stats()["evictions"] == 0

    def test_maxsize_one(self):
        cache = QuoteCache(maxsize=1, clock=FakeClock())
        for i in range(5):
            cache.put(i, result(float(i)))
        assert len(cache) == 1
        assert cache.get(4).price == 4.0
        assert cache.stats()["evictions"] == 4


class TestTTL:
    def test_expires_exactly_at_ttl(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", result(1.0))
        clock.advance(10.0 - 1e-9)
        assert cache.get("a").price == 1.0  # age < ttl: still valid
        clock.advance(1e-9)
        assert cache.get("a") is None  # age == ttl: expired
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["size"] == 0

    def test_put_refresh_restarts_ttl(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", result(1.0))
        clock.advance(9.0)
        cache.put("a", result(2.0))
        clock.advance(9.0)
        assert cache.get("a").price == 2.0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=8, ttl=None, clock=clock)
        cache.put("a", result(1.0))
        clock.advance(1e12)
        assert cache.get("a").price == 1.0

    def test_purge_expired_sweeps_deterministically(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", result(1.0))
        clock.advance(5.0)
        cache.put("b", result(2.0))
        clock.advance(5.0)  # a is at ttl, b at half
        assert cache.purge_expired() == 1
        assert "a" not in cache
        assert "b" in cache

    def test_contains_respects_ttl_without_counting(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", result(1.0))
        assert "a" in cache
        clock.advance(10.0)
        assert "a" not in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestPeek:
    def test_no_counters_no_recency(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.put("a", result(1.0))
        cache.put("b", result(2.0))
        assert cache.peek("a").price == 1.0
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        cache.put("c", result(3.0))  # peek did not refresh "a"
        assert cache.peek("a") is None
        assert cache.peek("b").price == 2.0

    def test_peek_drops_expired(self):
        clock = FakeClock()
        cache = QuoteCache(maxsize=2, ttl=10.0, clock=clock)
        cache.put("a", result(1.0))
        clock.advance(10.0)
        assert cache.peek("a") is None
        stats = cache.stats()
        assert stats["expirations"] == 1 and stats["size"] == 0


class TestCounters:
    def test_snapshot(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.get("missing")
        cache.put("a", result(1.0))
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["size"] == 1
        assert stats["hit_ratio"] == pytest.approx(2 / 3)

    def test_clear_drops_entries_keeps_counters(self):
        cache = QuoteCache(maxsize=2, clock=FakeClock())
        cache.put("a", result(1.0))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            QuoteCache(maxsize=0)
        with pytest.raises(ValidationError):
            QuoteCache(ttl=0.0)
        with pytest.raises(ValidationError):
            QuoteCache(ttl=-1.0)


class TestStaleGrace:
    """Stale-while-revalidate lifecycle: fresh → stale → gone, every
    boundary pinned on the injected clock."""

    def make(self, **kw):
        clock = FakeClock()
        defaults = dict(maxsize=8, ttl=10.0, stale_grace=5.0, clock=clock)
        defaults.update(kw)
        return QuoteCache(**defaults), clock

    def test_fresh_entry_serves_through_both_paths(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(10.0 - 1e-9)
        assert cache.get("a").price == 1.0
        assert cache.get_stale("a").price == 1.0
        assert cache.stats()["stale_served"] == 0  # fresh, not stale

    def test_expiry_boundary_is_closed(self):
        # at age exactly ttl the entry is stale: get misses, get_stale serves
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(10.0)
        assert cache.get("a") is None
        assert cache.get_stale("a").price == 1.0
        stats = cache.stats()
        assert stats["stale_served"] == 1
        assert stats["expirations"] == 1

    def test_gone_boundary_is_closed(self):
        # at age exactly ttl + grace nothing serves it and it is dropped
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(15.0 - 1e-9)
        assert cache.get_stale("a").price == 1.0
        clock.advance(1e-9)
        assert cache.get_stale("a") is None
        assert len(cache) == 0

    def test_stale_entry_is_retained_not_dropped_by_get(self):
        # the get() miss at expiry must not destroy the stale copy the
        # degradation path needs a moment later
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(12.0)
        assert cache.get("a") is None
        assert cache.get_stale("a").price == 1.0

    def test_expiration_counted_once_across_paths(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(12.0)
        cache.get("a")
        cache.get_stale("a")
        cache.get_stale("a")
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["stale_served"] == 2

    def test_stale_serves_do_not_touch_hit_miss_or_recency(self):
        cache, clock = self.make(maxsize=2)
        cache.put("a", result(1.0))
        cache.put("b", result(2.0))
        clock.advance(12.0)  # both stale
        cache.get_stale("a")  # must NOT refresh "a"'s LRU slot
        cache.put("c", result(3.0))  # evicts "a" (still the oldest)
        assert cache.get_stale("a") is None is not cache.get_stale("b")
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_refresh_put_restores_freshness(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(12.0)
        assert cache.get("a") is None  # stale
        cache.put("a", result(1.5))  # the revalidate
        assert cache.get("a").price == 1.5
        # a full new lifecycle: counted again at its next expiry
        clock.advance(10.0)
        assert cache.get("a") is None
        assert cache.stats()["expirations"] == 2

    def test_purge_keeps_graced_entries_drops_gone_ones(self):
        cache, clock = self.make()
        cache.put("old", result(1.0))
        clock.advance(8.0)
        cache.put("mid", result(2.0))
        clock.advance(8.0)  # old at 16 (gone), mid at 8 (fresh)
        cache.put("young", result(3.0))
        assert cache.purge_expired() == 1  # only "old"
        assert len(cache) == 2
        clock.advance(3.0)  # mid at 11: stale, inside the grace
        assert cache.purge_expired() == 0
        assert cache.get_stale("mid").price == 2.0

    def test_zero_grace_is_exactly_drop_at_expiry(self):
        cache, clock = self.make(stale_grace=0.0)
        cache.put("a", result(1.0))
        clock.advance(10.0)
        assert cache.get_stale("a") is None
        assert len(cache) == 0

    def test_grace_validation(self):
        with pytest.raises(ValidationError):
            QuoteCache(stale_grace=-1.0)
        with pytest.raises(ValidationError):
            QuoteCache(stale_grace=float("nan"))


class TestStaleCounters:
    """The stale-while-revalidate pair in stats(): ``stale_hits`` (serves
    of expired-but-graced entries) and ``stale_refreshes`` (re-solves that
    landed on one) — both pinned on the injected clock."""

    def make(self, **kw):
        clock = FakeClock()
        defaults = dict(maxsize=8, ttl=10.0, stale_grace=5.0, clock=clock)
        defaults.update(kw)
        return QuoteCache(**defaults), clock

    def test_stale_hits_counts_stale_serves_only(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))
        assert cache.get_stale("a").price == 1.0  # fresh serve: no count
        assert cache.stats()["stale_hits"] == 0
        clock.advance(12.0)  # stale
        cache.get_stale("a")
        cache.get_stale("a")
        stats = cache.stats()
        assert stats["stale_hits"] == 2
        assert stats["stale_hits"] == stats["stale_served"]  # alias

    def test_stale_refresh_counted_on_put_over_stale_entry(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))
        assert cache.stats()["stale_refreshes"] == 0
        clock.advance(12.0)  # inside the grace window
        cache.put("a", result(1.5))  # the revalidate lands
        stats = cache.stats()
        assert stats["stale_refreshes"] == 1
        # the refreshed entry is fresh again: another put is a plain
        # replacement, not a stale refresh
        cache.put("a", result(1.6))
        assert cache.stats()["stale_refreshes"] == 1

    def test_refresh_of_fresh_or_absent_key_is_not_counted(self):
        cache, clock = self.make()
        cache.put("a", result(1.0))  # absent -> store
        clock.advance(5.0)
        cache.put("a", result(1.1))  # fresh replacement
        cache.put("b", result(2.0))
        assert cache.stats()["stale_refreshes"] == 0

    def test_refresh_of_gone_entry_is_not_counted(self):
        # past ttl + grace the old entry could not have been served, so a
        # put is a cold store, not a revalidate
        cache, clock = self.make()
        cache.put("a", result(1.0))
        clock.advance(20.0)  # gone (ttl 10 + grace 5 < 20)
        cache.put("a", result(1.5))
        assert cache.stats()["stale_refreshes"] == 0

    def test_stale_refresh_keeps_boundary_semantics_intact(self):
        # the divider-keep rule applies to *fresh* replacements only; a
        # stale refresh replaces wholesale (the re-solve is newer truth)
        cache, clock = self.make()
        rich = result(1.0)
        rich.boundary = {3: 1}
        cache.put("a", rich)
        clock.advance(12.0)
        cache.put("a", result(1.5))  # stale refresh, divider-less
        assert cache.get("a").boundary is None
        assert cache.stats()["stale_refreshes"] == 1
