"""Tests for the RAPL-style energy model."""

import pytest

from repro.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.parallel.workspan import WorkSpan
from repro.util.validation import ValidationError


def test_total_is_pkg_plus_ram():
    b = DEFAULT_ENERGY_MODEL.energy(WorkSpan(1e9, 1), 1.0, 1e6)
    assert b.total_joules == pytest.approx(b.pkg_joules + b.ram_joules)


def test_static_term_scales_with_runtime():
    m = EnergyModel(pkg_nj_per_flop=0.0, ram_nj_per_line=0.0)
    a = m.energy(WorkSpan(0, 0), 1.0, 0)
    b = m.energy(WorkSpan(0, 0), 2.0, 0)
    assert b.total_joules == pytest.approx(2 * a.total_joules)


def test_dynamic_term_scales_with_work():
    m = EnergyModel(pkg_static_watts=0.0, ram_static_watts=0.0, ram_nj_per_line=0.0)
    a = m.energy(WorkSpan(1e9, 1), 0.0, 0)
    b = m.energy(WorkSpan(2e9, 1), 0.0, 0)
    assert b.pkg_joules == pytest.approx(2 * a.pkg_joules)


def test_ram_term_scales_with_lines():
    m = EnergyModel(pkg_static_watts=0.0, ram_static_watts=0.0, pkg_nj_per_flop=0.0)
    a = m.energy(WorkSpan(0, 0), 0.0, 1e6)
    b = m.energy(WorkSpan(0, 0), 0.0, 3e6)
    assert b.ram_joules == pytest.approx(3 * a.ram_joules)


def test_negative_runtime_rejected():
    with pytest.raises(ValidationError):
        DEFAULT_ENERGY_MODEL.energy(WorkSpan(1, 1), -1.0, 0)


def test_negative_lines_rejected():
    with pytest.raises(ValidationError):
        DEFAULT_ENERGY_MODEL.energy(WorkSpan(1, 1), 1.0, -5)


def test_energy_from_model_dispatch():
    b = DEFAULT_ENERGY_MODEL.energy_from_model("loop", 4096, WorkSpan(1e9, 1), 0.5)
    assert b.total_joules > 0


def test_work_gap_drives_energy_gap():
    """§5.2: at equal runtime, the T² work baseline burns far more energy."""
    t = 1.0
    fft_ws = WorkSpan(1e8, 1e3)
    loop_ws = WorkSpan(1e11, 1e3)
    e_fft = DEFAULT_ENERGY_MODEL.energy(fft_ws, t, 1e5).total_joules
    e_loop = DEFAULT_ENERGY_MODEL.energy(loop_ws, t, 1e8).total_joules
    assert e_loop > 1.5 * e_fft


def test_paper_savings_shape_at_scale():
    """>99% saving when both runtime and work differ by ~T/log²T."""
    fft = DEFAULT_ENERGY_MODEL.energy(WorkSpan(3e9, 1e4), 0.5, 1e6)
    loop = DEFAULT_ENERGY_MODEL.energy(WorkSpan(3e12, 1e6), 500.0, 1e9)
    saving = 1.0 - fft.total_joules / loop.total_joules
    assert saving > 0.99
