"""Telemetry threaded through the stack: one quote(), full instrument panel.

These tests pin the acceptance shape of the observability layer: a
cold/warm ``quote()`` pair must yield a valid Prometheus exposition, a
JSON snapshot with distinguishable cold/warm latency histograms, and a
span tree whose solve-phase wall time accounts for the quote wall time —
while the prices stay bit-identical to an uninstrumented service.
"""

import json

import pytest

from repro.core.api import price_many
from repro.core.fftstencil import AdvanceEngine
from repro.obs import Telemetry
from repro.options.contract import OptionSpec, Right
from repro.risk.engine import ScenarioEngine
from repro.risk.grid import ScenarioGrid
from repro.service.service import QuoteService

# American puts: calls without dividends short-circuit to closed form
# and would never exercise the engine (all counters would read zero).
SPEC = OptionSpec(
    spot=100.0, strike=100.0, rate=0.05, volatility=0.2,
    expiry_days=126.0, right=Right.PUT,
)


def bumped(i: int) -> OptionSpec:
    return OptionSpec(
        spot=100.0, strike=95.0 + i, rate=0.05,
        volatility=0.2 + 0.01 * i, expiry_days=126.0, right=Right.PUT,
    )


def make_service(tel):
    return QuoteService(
        model="binomial", method="fft", steps_default=256, telemetry=tel
    )


class TestQuotePipeline:
    def test_cold_warm_pair_full_panel(self):
        tel = Telemetry()
        svc = make_service(tel)
        cold = svc.quote(SPEC)
        warm = svc.quote(SPEC)
        assert cold.meta["cache"] == "miss"
        assert warm.meta["cache"] == "hit"

        # --- bit-identical to an uninstrumented service ---
        plain = make_service(None).quote(SPEC)
        assert cold.price == plain.price
        assert warm.price == cold.price

        # --- JSON snapshot: cold vs warm latency distinguishable ---
        snap = tel.snapshot()
        json.dumps(snap)  # must be JSON-able as-is
        lat = {
            m["labels"]["outcome"]: m["value"]
            for m in snap["metrics"]
            if m["name"] == "service_quote_seconds"
        }
        assert lat["miss"]["count"] == 1
        assert lat["hit"]["count"] == 1
        # a cold solve dwarfs a cache hit
        assert lat["miss"]["sum"] > lat["hit"]["sum"]

        # --- collected counter dialects re-registered, not duplicated ---
        collected = snap["collected"]
        assert collected["cache_hits"] == 1
        assert collected["cache_misses"] == 1
        assert collected["service_quotes"] == 2
        assert collected["service_solves"] == 1
        assert collected["engine_advances"] > 0

        # --- Prometheus exposition ---
        text = tel.to_prometheus()
        assert "# TYPE service_quote_seconds histogram" in text
        assert 'service_quote_seconds_bucket{outcome="miss",le="+Inf"} 1' in text
        assert 'service_quote_seconds_count{outcome="miss"} 1' in text
        assert "engine_advances" in text
        assert "cache_hits 1" in text

    def test_quote_span_tree_shape(self):
        tel = Telemetry()
        svc = make_service(tel)
        svc.quote(SPEC)
        trace = tel.tracer.to_json()["traces"][0]
        assert trace["name"] == "quote"
        child_names = [c["name"] for c in trace["children"]]
        assert child_names[:2] == ["canonicalize", "cache_lookup"]
        assert "bucket_solve" in child_names
        bucket = next(
            c for c in trace["children"] if c["name"] == "bucket_solve"
        )
        assert bucket["attrs"]["size"] == 1
        assert bucket["attrs"]["steps"] == 256

    def test_solve_phase_times_account_for_quote_wall(self):
        tel = Telemetry()
        svc = QuoteService(
            model="binomial", method="fft", steps_default=2048, telemetry=tel
        )
        svc.quote(SPEC)  # cold: solve dominates at this depth
        trace = tel.tracer.to_json()["traces"][0]
        wall = trace["duration"]
        phase_sum = sum(c["duration"] for c in trace["children"])
        assert phase_sum <= wall * (1 + 1e-9)
        assert phase_sum >= 0.9 * wall  # within 10% of measured wall

    def test_warm_quote_has_no_solve_span(self):
        tel = Telemetry()
        svc = make_service(tel)
        svc.quote(SPEC)
        svc.quote(SPEC)
        warm = tel.tracer.to_json()["traces"][-1]
        names = [c["name"] for c in warm["children"]]
        assert "bucket_solve" not in names
        assert names == ["canonicalize", "cache_lookup"]


class TestLockstepSpans:
    def test_batch_solve_records_round_spans_and_widths(self):
        tel = Telemetry()
        svc = make_service(tel)
        results = svc.quote_many([bumped(i) for i in range(6)])
        assert len(results) == 6
        bd = tel.tracer.phase_breakdown()
        assert bd["solve"]["count"] >= 1
        assert bd["lockstep_round"]["count"] > 1
        assert "advance_batch" in bd or "base_rows_batch" in bd
        # batch widths landed in the engine histograms
        snap = tel.snapshot()
        widths = {
            m["name"]: m["value"]
            for m in snap["metrics"]
            if m["name"].startswith("engine_")
        }
        assert widths["engine_base_rows_batch_rows"]["count"] > 0
        assert widths["engine_base_rows_batch_rows"]["max"] >= 2

    def test_lockstep_results_bit_identical_with_telemetry(self):
        specs = [bumped(i) for i in range(5)]
        engine_plain = AdvanceEngine()
        plain = price_many(specs, 128, engine=engine_plain)
        engine_tel = AdvanceEngine()
        engine_tel.set_telemetry(Telemetry())
        traced = price_many(specs, 128, engine=engine_tel)
        for a, b in zip(plain, traced):
            assert a.price == b.price  # bit-identical, not approx


class TestRiskDispatch:
    def test_serial_grid_spans_and_counters(self):
        tel = Telemetry()
        eng = ScenarioEngine(backend="serial", telemetry=tel)
        grid = ScenarioGrid.cartesian(
            SPEC, vol_bumps=(-0.02, 0.0, 0.02), rate_bumps=(0.0, 0.001)
        )
        result = eng.price_grid(grid, 64)
        assert len(result.results) == 6
        bd = tel.tracer.phase_breakdown()
        assert bd["grid"]["count"] == 1
        assert bd["dispatch"]["count"] == 1
        assert bd["chunk"]["count"] >= 1
        reg_snap = tel.snapshot()
        counters = {
            m["name"]: m["value"]
            for m in reg_snap["metrics"]
            if m["kind"] == "counter"
        }
        assert counters["risk_grids_total"] == 1
        assert counters["risk_cells_total"] == 6
        assert counters["risk_engine_advances"] > 0

    def test_pooled_grid_ships_worker_deltas_back(self):
        tel = Telemetry()
        eng = ScenarioEngine(
            backend="thread", workers=2, chunk_size=2, telemetry=tel
        )
        result = eng.price_grid([bumped(i) for i in range(4)], 64)
        info = result.meta["engine"]
        assert info["advances"] > 0
        snap = tel.snapshot()
        counters = {
            m["name"]: m["value"]
            for m in snap["metrics"]
            if m["kind"] == "counter"
        }
        assert counters["risk_engine_advances"] == info["advances"]
        hists = {
            m["name"]: m["value"]
            for m in snap["metrics"]
            if m["kind"] == "histogram"
        }
        assert hists["risk_chunk_seconds"]["count"] == 2  # one per chunk


class TestBreakerTelemetry:
    def test_transitions_recorded_as_gauge_and_counters(self):
        from repro.resilience.breaker import BreakerPolicy, CircuitBreaker

        tel = Telemetry()
        transitions = []
        gauge = tel.gauge("breaker_state", labels={"bucket": "b"})
        levels = {"closed": 0, "half_open": 1, "open": 2}

        def listener(old, new):
            transitions.append((old, new))
            gauge.set(levels[new])

        clock = [0.0]
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, reset_timeout=5.0),
            clock=lambda: clock[0],
            listener=listener,
        )
        breaker.record_failure()
        breaker.record_failure()  # trips open
        assert transitions == [("closed", "open")]
        assert gauge.value == 2
        clock[0] = 6.0
        assert breaker.allow()  # open -> half_open probe admitted
        breaker.record_success()  # closes
        assert transitions[-2:] == [
            ("open", "half_open"), ("half_open", "closed")
        ]
        assert gauge.value == 0

    def test_service_wires_breaker_listener(self):
        from repro.resilience.breaker import BreakerPolicy

        tel = Telemetry()
        svc = QuoteService(
            model="binomial", method="fft", steps_default=64,
            breaker=BreakerPolicy(failure_threshold=1), telemetry=tel,
        )
        bad = OptionSpec(
            spot=100.0, strike=100.0, rate=0.05, volatility=0.2,
            expiry_days=126.0,
        )
        # force a failing solve through a poisoned method override
        with pytest.raises(Exception):
            svc.quote(bad, steps=0)  # invalid steps -> canonicalize error
        # canonicalize failures never reach the breaker; drive a real trip
        breaker = svc._breaker_for(svc._canonicalize(bad, 64, None, None, None, None))
        breaker.record_failure()  # threshold=1: trips
        snap = tel.snapshot()
        trans = [
            m for m in snap["metrics"]
            if m["name"] == "breaker_transitions_total"
        ]
        assert len(trans) == 1
        assert trans[0]["labels"]["to"] == "open"
        states = [
            m for m in snap["metrics"] if m["name"] == "breaker_state"
        ]
        assert states[0]["value"] == 2  # open


class TestHealthSurface:
    def test_health_reports_ok_and_telemetry_flag(self):
        tel = Telemetry()
        svc = make_service(tel)
        svc.quote(SPEC)
        h = svc.health()
        assert h["status"] == "ok"
        assert h["open_breakers"] == []
        assert h["telemetry_enabled"] is True
        assert 0.0 <= h["cache_hit_ratio"] <= 1.0
        json.dumps(h)

    def test_stats_gains_telemetry_section_only_when_enabled(self):
        tel = Telemetry()
        svc = make_service(tel)
        svc.quote(SPEC)
        stats = svc.stats()
        assert "telemetry" in stats
        assert stats["telemetry"] == tel.snapshot()
        assert "telemetry" not in make_service(None).stats()

    def test_disabled_telemetry_handle_means_none_everywhere(self):
        svc = make_service(Telemetry.disabled())
        assert svc.telemetry is None
        r = svc.quote(SPEC)
        assert r.meta["cache"] == "miss"
