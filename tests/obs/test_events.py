"""Flight recorder: ring bounds, seq numbers, span correlation, JSONL."""

import json

import pytest

from repro.obs import (
    NULL_JOURNAL,
    EventJournal,
    Telemetry,
    Tracer,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestEmit:
    def test_events_carry_seq_ts_type_and_fields(self):
        clock = FakeClock(10.0)
        j = EventJournal(clock=clock)
        j.emit("retry", cell=3, attempt=0)
        clock.advance(1.5)
        j.emit("pool_rebuild", generation=1)
        events = j.events()
        assert [(e.seq, e.ts, e.type) for e in events] == [
            (0, 10.0, "retry"),
            (1, 11.5, "pool_rebuild"),
        ]
        assert events[0].fields == {"cell": 3, "attempt": 0}

    def test_seq_property_is_the_next_number(self):
        j = EventJournal(clock=FakeClock())
        assert j.seq == 0
        j.emit("a")
        j.emit("b")
        assert j.seq == 2

    def test_span_id_of_the_active_span_is_stamped(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        j = EventJournal(clock=clock, tracer=tr)
        j.emit("outside")
        with tr.span("grid"):
            with tr.span("dispatch") as sp:
                j.emit("inside")
                inner_id = sp.id
        events = j.events()
        assert events[0].span_id is None
        assert events[1].span_id == inner_id

    def test_emit_without_tracer_has_none_span_id(self):
        j = EventJournal(clock=FakeClock())
        assert j.emit("x").span_id is None


class TestRingBounds:
    def test_overflow_drops_oldest_and_counts(self):
        j = EventJournal(maxlen=3, clock=FakeClock())
        for i in range(5):
            j.emit("e", i=i)
        assert j.dropped == 2
        assert [e.fields["i"] for e in j.events()] == [2, 3, 4]
        # seq gaps reveal exactly where history went
        assert [e.seq for e in j.events()] == [2, 3, 4]

    def test_type_counters_survive_eviction(self):
        j = EventJournal(maxlen=2, clock=FakeClock())
        for _ in range(4):
            j.emit("retry")
        j.emit("isolate")
        assert j.counts() == {"isolate": 1, "retry": 4}
        assert j.stats() == {
            "emitted": 5,
            "retained": 2,
            "dropped": 3,
            "maxlen": 2,
            "by_type": {"isolate": 1, "retry": 4},
        }

    def test_maxlen_validated(self):
        with pytest.raises(Exception):
            EventJournal(maxlen=0)


class TestAccessors:
    def test_filter_by_type_and_since_seq(self):
        j = EventJournal(clock=FakeClock())
        j.emit("retry", cell=0)
        j.emit("isolate")
        j.emit("retry", cell=1)
        assert [e.fields["cell"] for e in j.events("retry")] == [0, 1]
        assert [e.type for e in j.events(since_seq=1)] == ["isolate", "retry"]

    def test_slice_is_half_open_on_seq(self):
        j = EventJournal(clock=FakeClock())
        for i in range(5):
            j.emit("e", i=i)
        sliced = j.slice(1, 4)
        assert [d["seq"] for d in sliced] == [1, 2, 3]
        assert sliced[0] == {
            "seq": 1, "ts": 0.0, "type": "e", "span_id": None,
            "fields": {"i": 1},
        }

    def test_clear_resets_everything(self):
        j = EventJournal(maxlen=1, clock=FakeClock())
        j.emit("a")
        j.emit("a")
        j.clear()
        assert j.seq == 0 and j.dropped == 0
        assert j.events() == [] and j.counts() == {}


class TestJsonl:
    def test_one_sorted_json_object_per_line(self, tmp_path):
        clock = FakeClock(1.0)
        j = EventJournal(clock=clock)
        j.emit("retry", cell=2, error="Crash")
        j.emit("cell_failed", cell=2)
        text = j.to_jsonl()
        lines = text.strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 0, "ts": 1.0, "type": "retry", "span_id": None,
            "fields": {"cell": 2, "error": "Crash"},
        }
        # keys are sorted for byte-stable replay artifacts
        assert lines[0].index('"fields"') < lines[0].index('"seq"')
        path = tmp_path / "journal.jsonl"
        assert j.write_jsonl(str(path)) == 2
        assert path.read_text() == text

    def test_unjsonable_fields_fall_back_to_repr(self):
        j = EventJournal(clock=FakeClock())
        j.emit("odd", payload=object())
        line = json.loads(j.to_jsonl().strip())
        assert line["fields"]["payload"].startswith("<object object")


class TestNullJournal:
    def test_emit_is_a_noop(self):
        assert NULL_JOURNAL.emit("x", a=1) is None
        assert NULL_JOURNAL.seq == 0
        assert NULL_JOURNAL.events() == []
        assert NULL_JOURNAL.slice(0) == []
        assert NULL_JOURNAL.counts() == {}
        assert NULL_JOURNAL.to_jsonl() == ""
        assert NULL_JOURNAL.stats()["emitted"] == 0

    def test_write_jsonl_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert NULL_JOURNAL.write_jsonl(str(path)) == 0
        assert path.read_text() == ""


class TestTelemetryIntegration:
    def test_enabled_telemetry_builds_a_wired_journal(self):
        clock = FakeClock()
        tel = Telemetry(clock=clock, journal_size=7)
        assert isinstance(tel.journal, EventJournal)
        assert tel.journal.maxlen == 7
        with tel.span("grid") as sp:
            tel.emit("pool_fallback", reason="workers=1")
        ev = tel.journal.events()[0]
        assert ev.span_id == sp.id
        assert ev.ts == clock.now

    def test_disabled_telemetry_gets_the_null_journal(self):
        tel = Telemetry.disabled()
        assert tel.journal is NULL_JOURNAL
        assert tel.emit("x") is None
