"""Span tracing: nesting, attributes, breakdown math, null fast path."""

import sys

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Telemetry, Tracer


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestNesting:
    def test_children_attach_to_the_open_parent(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("solve"):
            with tr.span("round"):
                with tr.span("advance_batch"):
                    clock.advance(1.0)
            with tr.span("round"):
                clock.advance(2.0)
        root = tr.last_trace()
        assert root["name"] == "solve"
        names = [c["name"] for c in root["children"]]
        assert names == ["round", "round"]
        assert root["children"][0]["children"][0]["name"] == "advance_batch"

    def test_attributes_at_open_and_via_set(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("quote", steps=256) as sp:
            sp.set(outcome="miss", rows=7)
        trace = tr.last_trace()
        assert trace["attrs"] == {"steps": 256, "outcome": "miss", "rows": 7}

    def test_exception_is_recorded_and_reraised(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tr.span("solve"):
                raise ValueError("boom")
        assert tr.last_trace()["attrs"]["error"] == "ValueError"

    def test_sequential_roots_are_retained_up_to_cap(self):
        tr = Tracer(clock=FakeClock(), max_traces=2)
        for i in range(4):
            with tr.span(f"r{i}"):
                pass
        names = [t["name"] for t in tr.to_json()["traces"]]
        assert names == ["r2", "r3"]

    def test_child_retention_cap_counts_drops(self):
        tr = Tracer(clock=FakeClock(), max_children=2)
        with tr.span("solve"):
            for _ in range(5):
                with tr.span("round"):
                    pass
        root = tr.last_trace()
        assert len(root["children"]) == 2
        assert root["dropped_children"] == 3
        # the aggregate still saw every round
        assert tr.phase_breakdown()["round"]["count"] == 5


class TestBreakdown:
    def test_total_and_self_time_partition_the_wall(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("solve"):
            clock.advance(1.0)  # solve self time
            with tr.span("advance_batch"):
                clock.advance(3.0)
            clock.advance(0.5)  # more solve self time
        bd = tr.phase_breakdown()
        assert bd["solve"]["total_s"] == pytest.approx(4.5)
        assert bd["solve"]["self_s"] == pytest.approx(1.5)
        assert bd["advance_batch"]["total_s"] == pytest.approx(3.0)
        # self times over all phases sum exactly to the root wall time
        total_self = sum(v["self_s"] for v in bd.values())
        assert total_self == pytest.approx(4.5)

    def test_breakdown_aggregates_across_traces(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(3):
            with tr.span("quote"):
                clock.advance(2.0)
        bd = tr.phase_breakdown()
        assert bd["quote"]["count"] == 3
        assert bd["quote"]["total_s"] == pytest.approx(6.0)

    def test_reset_clears_traces_and_aggregates(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("x"):
            pass
        tr.reset()
        assert tr.last_trace() is None
        assert tr.phase_breakdown() == {}


class TestNullTracer:
    def test_null_span_is_one_shared_reentrant_object(self):
        a = NULL_TRACER.span("solve")
        b = NULL_TRACER.span("quote", steps=9)
        assert a is b is NULL_SPAN
        with NULL_SPAN as outer:
            with NULL_SPAN as inner:
                inner.set(rows=3)
            assert outer is NULL_SPAN
        assert NULL_TRACER.last_trace() is None
        assert NULL_TRACER.phase_breakdown() == {}
        assert NULL_TRACER.to_json() == {"traces": [], "breakdown": {}}

    def test_null_span_usage_does_not_allocate(self):
        span = NULL_TRACER.span("warm")
        for _ in range(100):
            with span:
                span.set(a=1)
        before = sys.getallocatedblocks()
        for _ in range(1000):
            with span:
                span.set(a=1)
        after = sys.getallocatedblocks()
        assert after - before <= 2


class TestSpanIds:
    def test_ids_are_unique_and_stable_in_as_dict(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("grid") as g:
            with tr.span("dispatch") as d:
                pass
        assert g.id != d.id
        root = tr.last_trace()
        assert root["id"] == g.id
        assert root["children"][0]["id"] == d.id

    def test_ids_count_per_tracer(self):
        a, b = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
        assert a.span("x").id == 1
        assert a.span("y").id == 2
        assert b.span("z").id == 1  # independent sequence per tracer

    def test_null_span_id_is_none(self):
        assert NULL_SPAN.id is None


class TestTelemetryCaps:
    """Retention caps are reachable through the Telemetry facade."""

    def test_constructor_caps_reach_the_tracer(self):
        tel = Telemetry(clock=FakeClock(), max_traces=3, max_children=2)
        assert tel.tracer.max_traces == 3
        assert tel.tracer.max_children == 2
        for i in range(5):
            with tel.span(f"r{i}"):
                for child in ("a", "b", "c"):
                    with tel.span(child):
                        pass
        forest = tel.tracer.to_json()["traces"]
        assert [t["name"] for t in forest] == ["r2", "r3", "r4"]
        assert all(t["dropped_children"] == 1 for t in forest)

    def test_defaults_match_the_pre_parameterised_behaviour(self):
        tel = Telemetry(clock=FakeClock())
        assert tel.tracer.max_traces == 16
        assert tel.tracer.max_children == 256
