"""MetricsRegistry: instrument semantics, merge algebra, exposition pins."""

import json
import math
import sys

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    Telemetry,
    active,
    bucket_index,
)
from repro.obs.registry import NUM_BUCKETS, NUM_FINITE


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCounters:
    def test_inc_defaults_to_one_and_accepts_amounts(self):
        reg = MetricsRegistry(clock=FakeClock())
        c = reg.counter("requests_total")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_same_name_and_labels_return_the_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels={"k": "v"})
        b = reg.counter("x", labels={"k": "v"})
        assert a is b
        assert reg.counter("x", labels={"k": "w"}) is not a

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels={"a": 1, "b": 2})
        b = reg.counter("x", labels={"b": 2, "a": 1})
        assert a is b

    def test_kind_conflicts_are_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", labels={"l": "1"})


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7


class TestHistogramBuckets:
    def test_bucket_index_layout(self):
        # closed upper bounds: an exact power of two lands in the bucket
        # it bounds, everything just above spills into the next
        assert bucket_index(2.0**-20) == 0
        assert bucket_index(2.0**-20 * 1.0001) == 1
        assert bucket_index(1.0) == 20
        assert bucket_index(1.0001) == 21
        assert bucket_index(2.0**20) == NUM_FINITE - 1
        assert bucket_index(2.0**20 * 1.1) == NUM_FINITE  # overflow
        assert bucket_index(0.0) == 0
        assert bucket_index(-5.0) == 0
        assert len(BUCKET_BOUNDS) == NUM_FINITE == NUM_BUCKETS - 1

    def test_bucket_index_matches_linear_scan(self):
        # the frexp fast path must agree with the definition for every
        # bucket boundary and interior point
        for i, hi in enumerate(BUCKET_BOUNDS):
            assert bucket_index(hi) == i
            # 0.75*hi sits inside bucket i's (hi/2, hi] span; for i == 0
            # it falls below the scale and clamps into the first bucket
            assert bucket_index(hi * 0.75) == i

    def test_observe_tracks_sum_count_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.004, 0.002):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)
        assert h.min == 0.001
        assert h.max == 0.004
        assert h.mean == pytest.approx(0.007 / 3)

    def test_empty_histogram_is_nan_not_crash(self):
        h = MetricsRegistry().histogram("lat")
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.min) and math.isnan(h.max)

    def test_quantiles_are_bucket_accurate_and_clamped(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for _ in range(99):
            h.observe(0.001)
        h.observe(1.0)
        # p50 lives in 0.001's bucket: within sqrt(2) of the true value
        # and never outside the observed range
        p50 = h.quantile(0.50)
        assert h.min <= p50 <= h.max
        assert p50 <= 0.001 * math.sqrt(2.0) + 1e-12
        assert h.quantile(1.0) == 1.0  # max rank clamps to observed max

    def test_snapshot_carries_derived_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        snap = reg.snapshot()["metrics"][0]["value"]
        assert snap["count"] == 4
        for k in ("p50", "p90", "p99"):
            assert snap["min"] <= snap[k] <= snap["max"]


class TestMerge:
    """Cross-process shipping: snapshots must merge associatively."""

    def seeded(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labels={"outcome": "cold"})
        for v in values:
            h.observe(v)
        reg.counter("n").inc(len(values))
        return reg

    @staticmethod
    def canon(reg):
        return json.dumps(reg.snapshot(), sort_keys=True)

    def test_merge_adds_counts_sums_and_extremes(self):
        parent = self.seeded([0.001])
        child = self.seeded([0.5, 4.0])
        parent.merge_snapshot(child.snapshot())
        h = parent.histogram("lat", labels={"outcome": "cold"})
        assert h.count == 3
        assert h.sum == pytest.approx(4.501)
        assert h.min == 0.001 and h.max == 4.0
        assert parent.counter("n").value == 3

    def test_merge_is_associative_and_commutative(self):
        snaps = [
            self.seeded(vals).snapshot()
            for vals in ([0.001, 0.01], [0.5], [2.0, 30.0, 0.0002])
        ]
        ab_c = MetricsRegistry()
        ab_c.merge_snapshot(snaps[0])
        ab_c.merge_snapshot(snaps[1])
        ab_c.merge_snapshot(snaps[2])
        c_ba = MetricsRegistry()
        c_ba.merge_snapshot(snaps[2])
        c_ba.merge_snapshot(snaps[1])
        c_ba.merge_snapshot(snaps[0])
        assert self.canon(ab_c) == self.canon(c_ba)

    def test_merge_roundtrips_through_json(self):
        # exactly what a process pool does: snapshot → pickle/json → merge
        child = self.seeded([0.003, 0.7])
        wire = json.loads(json.dumps(child.snapshot()))
        parent = MetricsRegistry()
        parent.merge_snapshot(wire)
        assert self.canon(parent) == self.canon(child)

    def test_parent_gauge_level_wins(self):
        parent = MetricsRegistry()
        parent.gauge("depth").set(5)
        child = MetricsRegistry()
        child.gauge("depth").set(99)
        parent.merge_snapshot(child.snapshot())
        assert parent.gauge("depth").value == 5


class TestCollectors:
    def test_collector_dict_reexports_with_prefix(self):
        reg = MetricsRegistry()
        state = {"hits": 3, "misses": 1, "ttl": None, "name": "x", "ok": True}
        reg.register_collector("cache", lambda: state)
        collected = reg.snapshot()["collected"]
        # numeric values only; bools coerce to ints, junk is skipped
        assert collected == {"cache_hits": 3, "cache_misses": 1, "cache_ok": 1}
        state["hits"] = 10  # live: read again at next export
        assert reg.snapshot()["collected"]["cache_hits"] == 10

    def test_colliding_collector_keys_sum(self):
        reg = MetricsRegistry()
        reg.register_collector("engine", lambda: {"advances": 2})
        reg.register_collector("engine", lambda: {"advances": 5})
        assert reg.snapshot()["collected"]["engine_advances"] == 7

    def test_count_dict_folds_deltas_into_counters(self):
        reg = MetricsRegistry()
        reg.count_dict("risk", {"retries": 2, "note": "skip me"})
        reg.count_dict("risk", {"retries": 1})
        assert reg.counter("risk_retries").value == 3


class TestPrometheusExposition:
    """Format pins: cumulative le= buckets, _sum/_count, TYPE headers."""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("quotes_total", help="quotes served").inc(3)
        reg.gauge("depth").set(2.5)
        text = reg.to_prometheus()
        assert "# HELP quotes_total quotes served\n" in text
        assert "# TYPE quotes_total counter\n" in text
        assert "\nquotes_total 3\n" in text or text.startswith("quotes_total 3")
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labels={"outcome": "cold"})
        h.observe(0.001)
        h.observe(0.002)
        h.observe(1e9)  # overflow bucket
        text = reg.to_prometheus()
        lines = [l for l in text.splitlines() if l.startswith("lat_bucket")]
        assert len(lines) == NUM_BUCKETS
        assert lines[-1] == 'lat_bucket{outcome="cold",le="+Inf"} 3'
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative: monotone
        assert 'lat_sum{outcome="cold"}' in text
        assert 'lat_count{outcome="cold"} 3' in text

    def test_multi_label_series_share_one_type_header(self):
        reg = MetricsRegistry()
        reg.counter("served", labels={"outcome": "hit"}).inc()
        reg.counter("served", labels={"outcome": "miss"}).inc(2)
        text = reg.to_prometheus()
        assert text.count("# TYPE served counter") == 1
        assert 'served{outcome="hit"} 1' in text
        assert 'served{outcome="miss"} 2' in text


class TestDisabledMode:
    def test_null_registry_hands_out_one_shared_instrument(self):
        assert NULL_REGISTRY.counter("a") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("b") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("c") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.observe(1.0)
        NULL_INSTRUMENT.set(2.0)
        assert NULL_INSTRUMENT.value == 0.0
        assert NULL_REGISTRY.snapshot() == {"metrics": [], "collected": {}}
        assert NULL_REGISTRY.to_prometheus() == ""

    def test_active_normalises_disabled_to_none(self):
        assert active(None) is None
        assert active(Telemetry.disabled()) is None
        tel = Telemetry(clock=FakeClock())
        assert active(tel) is tel

    def test_disabled_instrument_calls_do_not_allocate(self):
        null_c = NULL_REGISTRY.counter("x")
        # warm any lazy interpreter state, then pin allocated blocks
        for _ in range(100):
            null_c.inc()
            null_c.observe(1.0)
        before = sys.getallocatedblocks()
        for _ in range(1000):
            null_c.inc()
            null_c.observe(1.0)
        after = sys.getallocatedblocks()
        assert after - before <= 2  # no per-call allocation survives


class TestInjectableClock:
    def test_registry_uses_the_injected_clock(self):
        clock = FakeClock(5.0)
        tel = Telemetry(clock=clock)
        assert tel.clock() == 5.0
        with tel.span("s") as sp:
            clock.advance(2.0)
        assert sp.duration == pytest.approx(2.0)


class TestHelpLines:
    """# HELP format pins: before # TYPE, once per name across label sets."""

    def test_help_precedes_type_for_every_kind(self):
        reg = MetricsRegistry()
        reg.counter("quotes_total", help="quotes served").inc()
        reg.gauge("depth", help="queue depth").set(1)
        reg.histogram("lat", help="latency seconds").observe(0.1)
        text = reg.to_prometheus()
        for name in ("quotes_total", "depth", "lat"):
            assert text.index(f"# HELP {name} ") < text.index(
                f"# TYPE {name} "
            )

    def test_help_emitted_once_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter(
            "served", labels={"outcome": "hit"}, help="serves by outcome"
        ).inc()
        reg.counter(
            "served", labels={"outcome": "miss"}, help="serves by outcome"
        ).inc(2)
        text = reg.to_prometheus()
        assert text.count("# HELP served serves by outcome\n") == 1
        assert text.count("# TYPE served counter\n") == 1

    def test_no_help_string_means_no_help_line(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc()
        text = reg.to_prometheus()
        assert "# HELP" not in text
        assert "# TYPE plain counter" in text
