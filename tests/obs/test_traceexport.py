"""Chrome trace export: event mapping, merging, worker tracks, validator."""

import json

import pytest

from repro.obs import (
    Telemetry,
    Tracer,
    chrome_trace,
    merge_chrome_traces,
    validate_chrome_trace,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _x_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] == "X"]


def _make_forest():
    clock = FakeClock(100.0)
    tr = Tracer(clock=clock)
    with tr.span("grid", cells=8):
        clock.advance(0.5)
        with tr.span("dispatch"):
            clock.advance(1.0)
    return tr


class TestChromeTrace:
    def test_spans_become_complete_events_in_microseconds(self):
        trace = chrome_trace(_make_forest())
        validate_chrome_trace(trace)
        xs = _x_events(trace)
        assert [e["name"] for e in xs] == ["grid", "dispatch"]
        grid, dispatch = xs
        # relative to the earliest start, scaled to µs
        assert grid["ts"] == 0.0
        assert grid["dur"] == pytest.approx(1.5e6)
        assert dispatch["ts"] == pytest.approx(0.5e6)
        assert dispatch["dur"] == pytest.approx(1.0e6)
        assert grid["args"]["cells"] == 8
        # span ids ride along for journal correlation
        assert grid["args"]["span_id"] != dispatch["args"]["span_id"]

    def test_accepts_tracer_forest_dict_or_root_list(self):
        tr = _make_forest()
        forest = tr.to_json()
        for source in (tr, forest, forest["traces"]):
            names = [e["name"] for e in _x_events(chrome_trace(source))]
            assert names == ["grid", "dispatch"]

    def test_metadata_names_the_process(self):
        trace = chrome_trace(_make_forest(), process_name="svc")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {"name": "svc"} in [m["args"] for m in meta]

    def test_required_top_level_keys(self):
        trace = chrome_trace(_make_forest())
        assert "traceEvents" in trace
        assert trace["displayTimeUnit"] == "ms"

    def test_empty_forest_exports_and_validates(self):
        trace = chrome_trace(Tracer(clock=FakeClock()))
        validate_chrome_trace(trace)
        assert _x_events(trace) == []


class TestMergedForests:
    def test_each_forest_gets_its_own_pid_on_a_shared_origin(self):
        clock = FakeClock(50.0)
        a, b = Tracer(clock=clock), Tracer(clock=clock)
        with a.span("quote"):
            clock.advance(1.0)
        with b.span("quote"):
            clock.advance(2.0)
        trace = merge_chrome_traces({"svc-a": a, "svc-b": b})
        validate_chrome_trace(trace)
        xs = _x_events(trace)
        assert len({e["pid"] for e in xs}) == 2
        # b started 1 s after a on the shared clock
        by_pid = sorted(xs, key=lambda e: e["pid"])
        assert by_pid[0]["ts"] == 0.0
        assert by_pid[1]["ts"] == pytest.approx(1.0e6)


class TestWorkerTracks:
    def test_chunks_land_on_separate_worker_pids(self):
        tracks = [
            {"pid": 901, "tid": 1, "lo": 0, "hi": 4, "t0": 10.0, "t1": 11.0},
            {"pid": 902, "tid": 1, "lo": 4, "hi": 8, "t0": 10.2, "t1": 11.5},
        ]
        trace = chrome_trace(
            Tracer(clock=FakeClock()), worker_tracks=tracks
        )
        validate_chrome_trace(trace)
        xs = _x_events(trace)
        assert [e["name"] for e in xs] == ["chunk[0:4)", "chunk[4:8)"]
        assert len({e["pid"] for e in xs}) == 2
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == pytest.approx(0.2e6)
        assert xs[1]["dur"] == pytest.approx(1.3e6)
        assert xs[0]["args"] == {"lo": 0, "hi": 4, "worker_pid": 901}

    def test_worker_names_appear_in_metadata(self):
        tracks = [
            {"pid": 77, "tid": 5, "lo": 0, "hi": 2, "t0": 0.0, "t1": 1.0},
        ]
        trace = chrome_trace(Tracer(clock=FakeClock()), worker_tracks=tracks)
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert "worker pid=77" in names


class TestWriteChromeTrace:
    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), chrome_trace(_make_forest()))
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert [e["name"] for e in _x_events(loaded)] == ["grid", "dispatch"]

    def test_invalid_trace_is_rejected_before_writing(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(ValueError):
            write_chrome_trace(str(path), {"traceEvents": [{"ph": "X"}]})
        assert not path.exists()


class TestValidator:
    def _base(self, **over):
        ev = {"ph": "X", "name": "s", "ts": 0.0, "dur": 1.0,
              "pid": 1, "tid": 1}
        ev.update(over)
        return ev

    def test_accepts_well_formed_x_events(self):
        validate_chrome_trace({"traceEvents": [self._base()]})

    def test_missing_required_key_raises(self):
        for key in ("ph", "pid", "tid", "name"):
            ev = self._base()
            del ev[key]
            with pytest.raises(ValueError, match=key):
                validate_chrome_trace({"traceEvents": [ev]})

    def test_negative_ts_or_dur_raises(self):
        with pytest.raises(ValueError, match="invalid ts"):
            validate_chrome_trace({"traceEvents": [self._base(ts=-1.0)]})
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace({"traceEvents": [self._base(dur=-1.0)]})

    def test_backwards_ts_on_one_track_raises(self):
        events = [self._base(ts=5.0), self._base(ts=1.0)]
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace({"traceEvents": events})

    def test_separate_tracks_keep_independent_clocks(self):
        events = [self._base(ts=5.0), self._base(ts=1.0, tid=2)]
        validate_chrome_trace({"traceEvents": events})

    def test_b_e_pairs_must_match_and_close(self):
        b = {"ph": "B", "name": "s", "ts": 0.0, "pid": 1, "tid": 1}
        e = {"ph": "E", "name": "s", "ts": 1.0, "pid": 1, "tid": 1}
        validate_chrome_trace({"traceEvents": [b, e]})
        with pytest.raises(ValueError, match="no open B"):
            validate_chrome_trace({"traceEvents": [e]})
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": [b]})
        wrong = dict(e, name="other")
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace({"traceEvents": [b, wrong]})

    def test_unknown_phase_and_shape_rejected(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace({"traceEvents": [self._base(ph="Q")]})
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})


class TestEndToEnd:
    def test_telemetry_run_round_trips_through_the_exporter(self):
        clock = FakeClock()
        tel = Telemetry(clock=clock)
        with tel.span("quote"):
            with tel.span("canonicalize"):
                clock.advance(0.1)
            with tel.span("cache_lookup"):
                clock.advance(0.2)
        trace = chrome_trace(tel.tracer, process_name="quote-service")
        validate_chrome_trace(trace)
        assert [e["name"] for e in _x_events(trace)] == [
            "quote", "canonicalize", "cache_lookup",
        ]
